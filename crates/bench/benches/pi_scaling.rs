//! Bench behind Figs. 11–13: the π kernel at increasing iteration counts
//! under the full host launch overhead. The `[gflops]` lines printed once
//! per size carry the paper's metric.

use bench::harness::Group;
use bench::{pi_sim_config, run_pi};
use hls_profiling::ProfilingConfig;
use kernels::pi::PiParams;

fn main() {
    let sim = pi_sim_config();
    let prof = ProfilingConfig {
        sampling_period: 100_000,
        ..Default::default()
    };
    // The paper's sizes are ramp-dominated; bench scaled-down variants and
    // print the paper-size metrics once.
    for steps in [1_000_000u64, 4_000_000, 10_000_000] {
        let p = PiParams {
            steps,
            threads: 8,
            bs: 8,
        };
        let (run, est) = run_pi(&p, &sim, &prof);
        eprintln!(
            "[gflops] pi {steps:>9}: {:.3} GFLOP/s, {} cycles, pi={est:.6}",
            run.result.gflops(&sim),
            run.result.total_cycles
        );
    }

    let g = Group::new("pi_scaling", 10);
    for steps in [64_000u64, 256_000, 1_024_000] {
        let p = PiParams {
            steps,
            threads: 8,
            bs: 8,
        };
        g.bench(&steps.to_string(), || {
            run_pi(&p, &sim, &prof).0.result.total_cycles
        });
    }
}
