//! Makespan of a heterogeneous workload mix on the DAG scheduler vs the
//! same work on a fixed fan-out pool.
//!
//! The mix is one long profiled GEMM run plus four short profiled π runs,
//! each followed by a deliberately heavy trace analysis. The fixed-pool
//! baseline fans the five runs out and then performs every analysis
//! serially after the join — the pre-DAG structure of the sweeps. The
//! graph version makes each analysis an `Analyze` node dependent only on
//! its own run, so short-run analyses overlap the long GEMM simulation.
//!
//! On a machine with ≥ 4 hardware threads the DAG makespan must be
//! shorter than the fixed-pool makespan at `--jobs 4`; both orderings
//! must reduce to the same checksum. A [`PerfSnapshot`] with scheduler
//! health extras (worker utilization, steal/park counts, both makespans)
//! is written to `--bench-json PATH` or `target/sched_mix.json`.
//!
//! Run with `cargo bench --bench sched_mix`.

use bench::args::{default_jobs, Args, Mode};
use bench::engine::{BatchEngine, RunCtx, RunSpec, SchedStats};
use bench::graph::{NodeCtx, NodeKind, TaskGraph};
use bench::harness::{Group, SnapshotTimer};
use bench::{
    gemm_launch, gemm_sim_config, pi_launch, pi_sim_config, run_profiled_with, ProfiledRun,
};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_hls::{AccelCache, HlsConfig};
use nymble_ir::Kernel;
use paraver::analysis::StateProfile;
use paraver::states;
use std::cell::{Cell, RefCell};
use std::path::PathBuf;

const JOBS: usize = 4;
const THREADS: u32 = 4;
/// Repetitions of the state-profile pass per analysis: enough work that
/// overlapping analyses with the long GEMM run is visible in the makespan.
const ANALYZE_REPS: usize = 120;

/// One workload of the mix: a kernel plus its launch/sim configuration.
struct Workload {
    label: String,
    kernel: Kernel,
    sim: fpga_sim::SimConfig,
    launch: Vec<fpga_sim::memimg::LaunchArg>,
}

fn mix() -> Vec<Workload> {
    let gp = GemmParams {
        dim: 48,
        threads: THREADS,
        ..Default::default()
    };
    let mut v = vec![Workload {
        label: "gemm_v3".to_string(),
        kernel: gemm::build(GemmVersion::Vectorized, &gp),
        sim: gemm_sim_config(),
        launch: gemm_launch(&gp),
    }];
    // Step counts divisible by threads × block size (the π kernel's launch
    // contract), spanning a 2x range so the mix stays heterogeneous.
    for steps in [32_000u64, 40_000, 48_000, 64_000] {
        let pp = PiParams {
            steps,
            threads: THREADS,
            bs: 8,
        };
        v.push(Workload {
            label: format!("pi_{steps}"),
            kernel: pi::build(&pp),
            sim: pi_sim_config(),
            launch: pi_launch(&pp),
        });
    }
    v
}

/// The heavy post-processing step: fold repeated state profiles of the
/// trace into a checksum (order-independent across runs — the caller sums).
fn analyze(pr: &ProfiledRun) -> u64 {
    let mut acc = pr.result.total_cycles ^ (pr.trace.records.len() as u64);
    for _ in 0..ANALYZE_REPS {
        let prof = StateProfile::compute(&pr.trace.records, THREADS);
        acc = acc
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add((prof.fraction(states::RUNNING) * 1e9) as u64);
    }
    acc
}

/// Fixed-pool shape: fan the five runs out, join, then analyze serially.
fn flat_pass(engine: &BatchEngine, cache: &AccelCache, hls: &HlsConfig, mix: &[Workload]) -> u64 {
    let specs: Vec<RunSpec<'_, ProfiledRun>> = mix
        .iter()
        .map(|w| {
            RunSpec::new(w.label.clone(), move |_: &RunCtx| {
                run_profiled_with(
                    cache,
                    &w.kernel,
                    hls,
                    &w.sim,
                    &Default::default(),
                    &w.launch,
                )
            })
        })
        .collect();
    engine
        .run(specs)
        .iter()
        .map(|r| analyze(r.outcome.as_ref().expect("mix run")))
        .fold(0u64, u64::wrapping_add)
}

/// DAG shape: each analysis depends only on its own run, so it overlaps
/// every other still-running simulation.
fn dag_pass(
    engine: &BatchEngine,
    cache: &AccelCache,
    hls: &HlsConfig,
    mix: &[Workload],
) -> (u64, SchedStats) {
    enum MixNode {
        Ran(Box<ProfiledRun>),
        Sum(u64),
    }
    let mut graph: TaskGraph<'_, MixNode> = TaskGraph::new();
    let analyze_ids: Vec<_> = mix
        .iter()
        .map(|w| {
            let run = graph.add(
                NodeKind::Run,
                w.label.clone(),
                &[],
                move |_: &NodeCtx<'_, MixNode>| {
                    run_profiled_with(
                        cache,
                        &w.kernel,
                        hls,
                        &w.sim,
                        &Default::default(),
                        &w.launch,
                    )
                    .map(|pr| MixNode::Ran(Box::new(pr)))
                },
            );
            graph.add(
                NodeKind::Analyze,
                format!("analyze:{}", w.label),
                &[run],
                move |ctx: &NodeCtx<'_, MixNode>| {
                    let MixNode::Ran(pr) = ctx.dep(0).outcome.as_ref().expect("mix run") else {
                        unreachable!("run node produced a non-run payload")
                    };
                    Ok(MixNode::Sum(analyze(pr)))
                },
            )
        })
        .collect();
    let reduce = graph.add(
        NodeKind::Reduce,
        "checksum",
        &analyze_ids,
        |ctx: &NodeCtx<'_, MixNode>| {
            let mut acc = 0u64;
            for dep in ctx.deps() {
                let MixNode::Sum(s) = dep.outcome.as_ref().expect("analysis") else {
                    unreachable!("analyze node produced a non-sum payload")
                };
                acc = acc.wrapping_add(*s);
            }
            Ok(MixNode::Sum(acc))
        },
    );
    let out = engine.run_graph(graph);
    let MixNode::Sum(total) = out.reports[reduce.index()]
        .outcome
        .as_ref()
        .expect("reduce")
    else {
        unreachable!("reduce node produced a non-sum payload")
    };
    (*total, out.stats)
}

fn main() {
    let timer = SnapshotTimer::start();
    let args = Args::parse();
    let out_path: PathBuf = args
        .path("--bench-json")
        .unwrap_or_else(|| "target/sched_mix.json".into());
    let hls = HlsConfig::default();
    let cache = AccelCache::new();
    let engine = BatchEngine::new(JOBS);
    let mix = mix();
    // Compile everything up front so both passes measure pure scheduling
    // (every run hits the cache).
    for w in &mix {
        cache.get_or_compile(&w.kernel, &hls);
    }

    let g = Group::new("sched_mix", 3);
    let flat_sum = Cell::new(0u64);
    let flat = g.bench(&format!("flat_pool/jobs={JOBS}"), || {
        flat_sum.set(flat_pass(&engine, &cache, &hls, &mix));
    });
    let dag_sum = Cell::new(0u64);
    let dag_stats: RefCell<Option<SchedStats>> = RefCell::new(None);
    let dag = g.bench(&format!("dag_overlap/jobs={JOBS}"), || {
        let (sum, stats) = dag_pass(&engine, &cache, &hls, &mix);
        dag_sum.set(sum);
        *dag_stats.borrow_mut() = Some(stats);
    });
    assert_eq!(
        flat_sum.get(),
        dag_sum.get(),
        "DAG overlap changed an analysis checksum"
    );

    let speedup = flat.as_secs_f64() / dag.as_secs_f64();
    let hw = default_jobs();
    eprintln!(
        "[bench] sched_mix/speedup                       DAG overlap is {speedup:.2}x vs fixed pool ({hw} hardware threads)"
    );
    if hw >= 4 {
        assert!(
            dag < flat,
            "expected a shorter DAG makespan on a {hw}-thread machine: dag {:.3}s vs flat {:.3}s",
            dag.as_secs_f64(),
            flat.as_secs_f64()
        );
    } else {
        eprintln!(
            "[bench] sched_mix/speedup                       threshold skipped: only {hw} hardware thread(s)"
        );
    }

    let stats = dag_stats.borrow().clone().expect("dag pass ran");
    let snap = timer
        .finish("sched_mix", Mode::Cycle, 0)
        .param("jobs", JOBS)
        .param("workloads", mix.len())
        .with_extra("flat_makespan_seconds", flat.as_secs_f64())
        .with_extra("dag_makespan_seconds", dag.as_secs_f64())
        .with_extra("speedup_vs_flat", speedup)
        .with_extra("worker_utilization", stats.utilization())
        .with_extra("sched_steals", stats.steals as f64)
        .with_extra("sched_parks", stats.parks as f64);
    if let Some(parent) = out_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    snap.write(&out_path).expect("write sched_mix snapshot");
    eprintln!(
        "[bench] sched_mix/snapshot                      written to {}",
        out_path.display()
    );
}
