//! Bench behind the §V-B overhead study (E1/E2): the runtime cost of
//! attaching the profiling unit versus the `NullSnoop` baseline, the
//! per-counter area ablation, and the sampling-period sweep (the paper notes
//! the period trades trace size for temporal resolution).

use bench::harness::Group;
use bench::{gemm_launch, gemm_sim_config, run_profiled, run_unprofiled};
use hls_profiling::counters::CounterSet;
use hls_profiling::overhead::{instrumented_fit, OverheadParams};
use hls_profiling::ProfilingConfig;
use kernels::gemm::{self, GemmParams, GemmVersion};
use nymble_hls::accel::{compile, HlsConfig};

fn main() {
    let p = GemmParams {
        dim: 32,
        threads: 4,
        vec: 4,
        block: 8,
    };
    let sim = gemm_sim_config();
    let kernel = gemm::build(GemmVersion::Vectorized, &p);
    let launch = gemm_launch(&p);

    // Print the fit-overhead table once (the actual E1 artifact comes from
    // repro_overhead; this guards the calibration band in bench logs).
    let hls = HlsConfig::default();
    let acc = compile(&kernel, &hls);
    let with = instrumented_fit(
        &acc.fit,
        p.threads,
        &ProfilingConfig::default(),
        &OverheadParams::default(),
        &hls.cost,
    );
    let o = with.overhead_vs(&acc.fit);
    eprintln!(
        "[fit] vectorized GEMM: +{:.2}% ALMs, +{:.2}% registers, −{:.1} MHz",
        o.alms_pct, o.registers_pct, o.fmax_delta_mhz
    );

    let g = Group::new("profiling_overhead", 10);
    g.bench("unprofiled", || {
        run_unprofiled(&kernel, &sim, &launch).total_cycles
    });
    for period in [1_000u64, 10_000, 100_000] {
        let prof = ProfilingConfig {
            sampling_period: period,
            ..Default::default()
        };
        g.bench(&format!("profiled_period/{period}"), || {
            run_profiled(&kernel, &sim, &prof, &launch)
                .trace
                .flushed_bytes
        });
    }
    let states_only = ProfilingConfig {
        counters: CounterSet::NONE,
        ..Default::default()
    };
    g.bench("states_only", || {
        run_profiled(&kernel, &sim, &states_only, &launch)
            .trace
            .records
            .len()
    });
}
