//! Criterion bench of the HLS compiler itself (the paper notes its
//! "additions have negligible impact on the overall compile time" — this
//! bench tracks scheduling/fit cost per kernel so that claim stays honest
//! for the reproduction too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_hls::accel::{compile, HlsConfig};

fn bench_compiler(c: &mut Criterion) {
    let hls = HlsConfig::default();
    let gp = GemmParams::default();
    let mut g = c.benchmark_group("hls_compile");
    for v in GemmVersion::ALL {
        let kernel = gemm::build(v, &gp);
        g.bench_with_input(
            BenchmarkId::new("gemm", v.name()),
            &kernel,
            |b, kernel| b.iter(|| compile(kernel, &hls).fit.alms),
        );
    }
    let pk = pi::build(&PiParams::default());
    g.bench_function("pi", |b| b.iter(|| compile(&pk, &hls).fit.alms));
    g.bench_function("build_ir_gemm_dbuf", |b| {
        b.iter(|| gemm::build(GemmVersion::DoubleBuffered, &gp).exprs.len())
    });
    g.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
