//! Bench of the HLS compiler itself (the paper notes its "additions have
//! negligible impact on the overall compile time" — this bench tracks
//! scheduling/fit cost per kernel so that claim stays honest for the
//! reproduction too).

use bench::harness::Group;
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_hls::accel::{compile, HlsConfig};

fn main() {
    let hls = HlsConfig::default();
    let gp = GemmParams::default();
    let g = Group::new("hls_compile", 10);
    for v in GemmVersion::ALL {
        let kernel = gemm::build(v, &gp);
        g.bench(&format!("gemm/{}", v.name()), || {
            compile(&kernel, &hls).fit.alms
        });
    }
    let pk = pi::build(&PiParams::default());
    g.bench("pi", || compile(&pk, &hls).fit.alms);
    g.bench("build_ir_gemm_dbuf", || {
        gemm::build(GemmVersion::DoubleBuffered, &gp).exprs.len()
    });
}
