//! Bench behind T-GEMM / Fig. 7: simulates each GEMM optimization step end
//! to end (compile → cycle-level run → trace decode) at a reduced size and
//! reports both wall time and the simulated cycle counts whose ratios
//! reproduce the paper's speedups.

use bench::harness::Group;
use bench::{gemm_sim_config, run_gemm};
use kernels::gemm::{GemmParams, GemmVersion};

fn main() {
    let p = GemmParams {
        dim: 32,
        threads: 4,
        vec: 4,
        block: 8,
    };
    let sim = gemm_sim_config();

    // Print the simulated-cycle table once so bench logs carry the paper's
    // metric alongside the wall-clock numbers.
    let mut naive = 0u64;
    for v in GemmVersion::ALL {
        let r = run_gemm(v, &p, &sim);
        if v == GemmVersion::Naive {
            naive = r.result.total_cycles;
        }
        eprintln!(
            "[cycles] {:<24} {:>10} ({:.2}x vs naive)",
            v.name(),
            r.result.total_cycles,
            naive as f64 / r.result.total_cycles as f64
        );
    }

    let g = Group::new("gemm_versions", 10);
    for v in GemmVersion::ALL {
        g.bench(v.name(), || run_gemm(v, &p, &sim).result.total_cycles);
    }
}
