//! Property tests of the profiling unit's record path: arbitrary state
//! transition sequences and counter feeds survive packing → buffering →
//! flushing → decoding with nothing lost or invented.

use fpga_sim::{Snoop, ThreadState};
use hls_profiling::{ProfilingConfig, ProfilingUnit};
use paraver::analysis::{event_total, StateProfile};
use paraver::model::Record;
use proptest::prelude::*;

const THREADS: u32 = 4;

#[derive(Clone, Debug)]
enum Feed {
    State(u32, ThreadState),
    Ops(u32, u64, u64, u64),
    Read(u32, u64),
    Write(u32, u64),
    Stall(u32, u64),
}

fn arb_state() -> impl Strategy<Value = ThreadState> {
    prop_oneof![
        Just(ThreadState::Idle),
        Just(ThreadState::Running),
        Just(ThreadState::Critical),
        Just(ThreadState::Spinning),
    ]
}

fn arb_feed() -> impl Strategy<Value = Feed> {
    prop_oneof![
        (0..THREADS, arb_state()).prop_map(|(t, s)| Feed::State(t, s)),
        (0..THREADS, 0..100u64, 0..100u64, 0..100u64).prop_map(|(t, i, f, l)| Feed::Ops(t, i, f, l)),
        (0..THREADS, 0..4096u64).prop_map(|(t, b)| Feed::Read(t, b)),
        (0..THREADS, 0..4096u64).prop_map(|(t, b)| Feed::Write(t, b)),
        (0..THREADS, 0..64u64).prop_map(|(t, c)| Feed::Stall(t, c)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Everything fed into the counters appears in the decoded trace, and
    /// the reconstructed per-thread state timeline tiles the whole run.
    #[test]
    fn feed_is_conserved_through_buffer_and_decode(
        feeds in proptest::collection::vec((arb_feed(), 1u64..50), 1..300),
        period in 1u64..5_000,
        buffer_lines in 2usize..64,
    ) {
        let mut unit = ProfilingUnit::new("prop", THREADS, ProfilingConfig {
            sampling_period: period,
            buffer_lines,
            ..Default::default()
        });
        let mut t = 0u64;
        let (mut flops, mut int_ops, mut reads, mut writes, mut stalls) = (0u64, 0, 0, 0, 0);
        for (f, dt) in &feeds {
            t += dt;
            match f {
                Feed::State(tid, s) => unit.state_change(t, *tid, *s),
                Feed::Ops(tid, i, fl, l) => {
                    int_ops += i;
                    flops += fl;
                    unit.ops(t, *tid, *i, *fl, *l);
                }
                Feed::Read(tid, b) => {
                    reads += b;
                    unit.mem_read(t, *tid, *b);
                }
                Feed::Write(tid, b) => {
                    writes += b;
                    unit.mem_write(t, *tid, *b);
                }
                Feed::Stall(tid, c) => {
                    stalls += c;
                    unit.stall(t, *tid, *c);
                }
            }
        }
        let end = t + 10;
        unit.run_end(end);
        let trace = unit.finish();

        prop_assert_eq!(event_total(&trace.records, paraver::events::FLOPS), flops);
        prop_assert_eq!(event_total(&trace.records, paraver::events::INT_OPS), int_ops);
        prop_assert_eq!(event_total(&trace.records, paraver::events::BYTES_READ), reads);
        prop_assert_eq!(event_total(&trace.records, paraver::events::BYTES_WRITTEN), writes);
        prop_assert_eq!(event_total(&trace.records, paraver::events::STALLS), stalls);

        // State intervals tile [0, end) per thread.
        let profile = StateProfile::compute(&trace.records, THREADS);
        let per_thread_total: Vec<u64> = profile
            .per_thread
            .iter()
            .map(|m| m.values().sum())
            .collect();
        for (tid, total) in per_thread_total.iter().enumerate() {
            prop_assert_eq!(*total, end, "thread {} timeline must tile the run", tid);
        }

        // Intervals are disjoint and sorted per thread.
        for tid in 0..THREADS {
            let mut iv: Vec<(u64, u64)> = trace.records.iter().filter_map(|r| match r {
                Record::State { thread, begin, end, .. } if *thread == tid => Some((*begin, *end)),
                _ => None,
            }).collect();
            iv.sort_unstable();
            for w in iv.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    /// The trace stream stays decodable across any number of forced
    /// flushes — flushing is transparent to the decoder.
    #[test]
    fn tiny_buffers_flush_transparently(n_events in 1usize..200) {
        let run = |lines: usize| {
            let mut unit = ProfilingUnit::new("prop", 2, ProfilingConfig {
                sampling_period: 10,
                buffer_lines: lines,
                ..Default::default()
            });
            unit.state_change(0, 0, ThreadState::Running);
            for i in 0..n_events as u64 {
                unit.ops(i * 7, (i % 2) as u32, 1, 2, 0);
            }
            unit.run_end(n_events as u64 * 7 + 1);
            unit.finish()
        };
        let small = run(2);
        let big = run(4096);
        prop_assert!(small.flush_count >= big.flush_count);
        prop_assert_eq!(
            event_total(&small.records, paraver::events::FLOPS),
            event_total(&big.records, paraver::events::FLOPS)
        );
        prop_assert_eq!(small.records.len(), big.records.len());
    }
}
