//! Property tests of the profiling unit's record path: arbitrary state
//! transition sequences and counter feeds survive packing → buffering →
//! flushing → decoding with nothing lost or invented, and the streaming
//! pipeline reproduces the materialized decode exactly.

use fpga_sim::{Snoop, ThreadState};
use hls_profiling::counters::{unpack_event_record, CounterBank, CounterSet, EVENT_RECORD_BYTES};
use hls_profiling::recorder::{unpack_state_record, StateRecorder};
use hls_profiling::{PipelineConfig, ProfilingConfig, ProfilingUnit};
use miniprop::{forall, Rng};
use paraver::analysis::{event_total, StateProfile};
use paraver::model::Record;
use paraver::{TraceError, TraceSink};
use std::sync::{Arc, Mutex};

const THREADS: u32 = 4;

#[derive(Clone, Debug)]
enum Feed {
    State(u32, ThreadState),
    Ops(u32, u64, u64, u64),
    Read(u32, u64),
    Write(u32, u64),
    Stall(u32, u64),
}

const STATES: [ThreadState; 4] = [
    ThreadState::Idle,
    ThreadState::Running,
    ThreadState::Critical,
    ThreadState::Spinning,
];

fn arb_feed(g: &mut Rng) -> Feed {
    let tid = g.range_u32(0, THREADS);
    match g.range_u32(0, 5) {
        0 => Feed::State(tid, *g.pick(&STATES)),
        1 => Feed::Ops(
            tid,
            g.range_u64(0, 100),
            g.range_u64(0, 100),
            g.range_u64(0, 100),
        ),
        2 => Feed::Read(tid, g.range_u64(0, 4096)),
        3 => Feed::Write(tid, g.range_u64(0, 4096)),
        _ => Feed::Stall(tid, g.range_u64(0, 64)),
    }
}

fn apply_feeds(unit: &mut ProfilingUnit, feeds: &[(Feed, u64)]) -> (u64, u64, u64, u64, u64, u64) {
    let mut t = 0u64;
    let (mut flops, mut int_ops, mut reads, mut writes, mut stalls) = (0u64, 0, 0, 0, 0);
    for (f, dt) in feeds {
        t += dt;
        match f {
            Feed::State(tid, s) => unit.state_change(t, *tid, *s),
            Feed::Ops(tid, i, fl, l) => {
                int_ops += i;
                flops += fl;
                unit.ops(t, *tid, *i, *fl, *l);
            }
            Feed::Read(tid, b) => {
                reads += b;
                unit.mem_read(t, *tid, *b);
            }
            Feed::Write(tid, b) => {
                writes += b;
                unit.mem_write(t, *tid, *b);
            }
            Feed::Stall(tid, c) => {
                stalls += c;
                unit.stall(t, *tid, *c);
            }
        }
    }
    (t, flops, int_ops, reads, writes, stalls)
}

/// Everything fed into the counters appears in the decoded trace, and
/// the reconstructed per-thread state timeline tiles the whole run.
#[test]
fn feed_is_conserved_through_buffer_and_decode() {
    forall(64, |g| {
        let feeds = g.vec(1, 300, |g| (arb_feed(g), g.range_u64(1, 50)));
        let period = g.range_u64(1, 5_000);
        let buffer_lines = g.range_usize(2, 64);
        let mut unit = ProfilingUnit::new(
            "prop",
            THREADS,
            ProfilingConfig {
                sampling_period: period,
                buffer_lines,
                ..Default::default()
            },
        );
        let (t, flops, int_ops, reads, writes, stalls) = apply_feeds(&mut unit, &feeds);
        let end = t + 10;
        unit.run_end(end);
        let trace = unit.finish();

        assert_eq!(event_total(&trace.records, paraver::events::FLOPS), flops);
        assert_eq!(
            event_total(&trace.records, paraver::events::INT_OPS),
            int_ops
        );
        assert_eq!(
            event_total(&trace.records, paraver::events::BYTES_READ),
            reads
        );
        assert_eq!(
            event_total(&trace.records, paraver::events::BYTES_WRITTEN),
            writes
        );
        assert_eq!(event_total(&trace.records, paraver::events::STALLS), stalls);

        // State intervals tile [0, end) per thread.
        let profile = StateProfile::compute(&trace.records, THREADS);
        let per_thread_total: Vec<u64> = profile
            .per_thread
            .iter()
            .map(|m| m.values().sum())
            .collect();
        for (tid, total) in per_thread_total.iter().enumerate() {
            assert_eq!(*total, end, "thread {tid} timeline must tile the run");
        }

        // Intervals are disjoint and sorted per thread.
        for tid in 0..THREADS {
            let mut iv: Vec<(u64, u64)> = trace
                .records
                .iter()
                .filter_map(|r| match r {
                    Record::State {
                        thread, begin, end, ..
                    } if *thread == tid => Some((*begin, *end)),
                    _ => None,
                })
                .collect();
            iv.sort_unstable();
            for w in iv.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    });
}

/// The trace stream stays decodable across any number of forced
/// flushes — flushing is transparent to the decoder.
#[test]
fn tiny_buffers_flush_transparently() {
    forall(64, |g| {
        let n_events = g.range_usize(1, 200);
        let run = |lines: usize| {
            let mut unit = ProfilingUnit::new(
                "prop",
                2,
                ProfilingConfig {
                    sampling_period: 10,
                    buffer_lines: lines,
                    ..Default::default()
                },
            );
            unit.state_change(0, 0, ThreadState::Running);
            for i in 0..n_events as u64 {
                unit.ops(i * 7, (i % 2) as u32, 1, 2, 0);
            }
            unit.run_end(n_events as u64 * 7 + 1);
            unit.finish()
        };
        let small = run(2);
        let big = run(4096);
        assert!(small.flush_count >= big.flush_count);
        assert_eq!(
            event_total(&small.records, paraver::events::FLOPS),
            event_total(&big.records, paraver::events::FLOPS)
        );
        assert_eq!(small.records.len(), big.records.len());
    });
}

/// `unpack(pack(x)) == x` for the hardware record codecs, for arbitrary
/// inputs within hardware ranges.
#[test]
fn packed_records_roundtrip() {
    forall(128, |g| {
        // State records: arbitrary transition sequences.
        let n = g.range_u32(1, 16);
        let mut rec = StateRecorder::new(n);
        for _ in 0..g.range_usize(1, 20) {
            let t = g.range_u64(0, u32::MAX as u64);
            let tid = g.range_u32(0, n);
            let s = *g.pick(&STATES);
            let before = rec.state(tid);
            if let Some(packed) = rec.transition(t, tid, s) {
                let packed = packed.to_vec();
                let (cycle, states) = unpack_state_record(&packed[1..], n);
                assert_eq!(cycle as u64, t & 0xFFFF_FFFF);
                assert_eq!(states[tid as usize], s);
                assert_ne!(before, s, "emitted record implies a real change");
                for (i, got) in states.iter().enumerate() {
                    assert_eq!(*got, rec.state(i as u32), "thread {i} snapshot");
                }
            } else {
                assert_eq!(before, s, "suppressed record implies no change");
            }
        }

        // Event records: aggregates below u32::MAX round-trip exactly.
        let mut bank = CounterBank::new(n, CounterSet::default());
        let tid = g.range_u32(0, n);
        let (i, f, l) = (
            g.range_u64(1, 1 << 20),
            g.range_u64(0, 1 << 20),
            g.range_u64(0, 1 << 20),
        );
        let (rd, wr, st) = (
            g.range_u64(0, 1 << 20),
            g.range_u64(0, 1 << 20),
            g.range_u64(0, 1 << 20),
        );
        bank.add_ops(tid, i, f, l);
        bank.add_read(tid, rd);
        bank.add_write(tid, wr);
        bank.add_stalls(tid, st);
        let t = g.range_u64(0, u32::MAX as u64);
        let packed = bank.sample(t, tid).expect("nonzero aggregate");
        assert_eq!(packed.len(), EVENT_RECORD_BYTES);
        let (tid2, cycle, a) = unpack_event_record(&packed[1..]);
        assert_eq!(tid2, tid);
        assert_eq!(cycle as u64, t);
        assert_eq!(
            (
                a.int_ops,
                a.flops,
                a.local_ops,
                a.bytes_read,
                a.bytes_written,
                a.stalls
            ),
            (i, f, l, rd, wr, st)
        );
    });
}

struct SharedSink(Arc<Mutex<Vec<Record>>>);

impl TraceSink for SharedSink {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        self.0.lock().unwrap().push(r);
        Ok(())
    }
}

/// The streaming pipeline produces exactly the records of the materialized
/// path, in the same (sorted) order, for arbitrary feeds — with aggressive
/// spilling and a tiny channel.
#[test]
fn streaming_equals_materialized() {
    forall(32, |g| {
        let feeds = g.vec(1, 200, |g| (arb_feed(g), g.range_u64(1, 50)));
        let period = g.range_u64(1, 500);
        let buffer_lines = g.range_usize(2, 8);
        let cfg = ProfilingConfig {
            sampling_period: period,
            buffer_lines,
            ..Default::default()
        };

        let mut mat = ProfilingUnit::new("prop", THREADS, cfg.clone());
        let (t, ..) = apply_feeds(&mut mat, &feeds);
        mat.run_end(t + 10);
        let trace = mat.finish();

        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink_records = collected.clone();
        let mut st = ProfilingUnit::new_streaming(
            "prop",
            THREADS,
            cfg,
            PipelineConfig {
                channel_capacity: 1,
                max_in_memory_records: g.range_usize(1, 32),
                spill_dir: None,
            },
            Box::new(move |_| Ok(Box::new(SharedSink(sink_records)) as Box<_>)),
        );
        let _ = apply_feeds(&mut st, &feeds);
        st.run_end(t + 10);
        let report = st.finish_streaming().unwrap();

        assert_eq!(report.flushed_bytes, trace.flushed_bytes);
        assert_eq!(report.flush_count, trace.flush_count);
        assert_eq!(report.records as usize, trace.records.len());
        let got = collected.lock().unwrap();
        assert_eq!(*got, trace.records);
    });
}
