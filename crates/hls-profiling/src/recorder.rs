//! State recording (§IV-B.1).
//!
//! "The current state for each thread is stored in a register. Because the
//! state can change for multiple threads at once, each time at least one
//! thread changes its state, we record the current state for all threads
//! together with the current clock count. Each state is represented as a
//! 2-bit value ... The size of each state record is 2·N_threads + 32 bits."

use fpga_sim::ThreadState;

/// Binary tag bytes of the buffer stream.
pub const TAG_STATE: u8 = 0x01;
pub const TAG_EVENT: u8 = 0x02;
pub const TAG_REGION: u8 = 0x03;

/// Size in bytes of a packed region enter/exit record: tag byte + thread id
/// + 32-bit cycle + 16-bit region id + enter flag.
pub const REGION_RECORD_BYTES: usize = 1 + 1 + 4 + 2 + 1;

/// Pack a region boundary record (emitted under an auto-probe plan when a
/// thread crosses an instrumented region's edge).
pub fn pack_region_record(t: u64, tid: u32, region_id: u16, enter: bool) -> [u8; 9] {
    let mut rec = [0u8; REGION_RECORD_BYTES];
    rec[0] = TAG_REGION;
    rec[1] = tid as u8;
    rec[2..6].copy_from_slice(&((t & 0xFFFF_FFFF) as u32).to_le_bytes());
    rec[6..8].copy_from_slice(&region_id.to_le_bytes());
    rec[8] = enter as u8;
    rec
}

/// Unpack a region record payload (everything after the tag byte). Returns
/// `(tid, cycle_lo32, region_id, enter)`.
pub fn unpack_region_record(payload: &[u8]) -> (u32, u32, u16, bool) {
    let tid = payload[0] as u32;
    let cycle = u32::from_le_bytes(payload[1..5].try_into().expect("4-byte cycle"));
    let region = u16::from_le_bytes(payload[5..7].try_into().expect("2-byte region"));
    (tid, cycle, region, payload[7] != 0)
}

/// Size in bytes of a packed state record for `n` threads (tag byte +
/// 32-bit cycle + 2 bits per thread rounded up to bytes).
pub fn state_record_bytes(n: u32) -> usize {
    1 + 4 + (2 * n as usize).div_ceil(8)
}

/// Width in bits of the paper's hardware record (without our tag byte).
pub fn state_record_bits(n: u32) -> u32 {
    2 * n + 32
}

/// The state register file + packer.
#[derive(Clone, Debug)]
pub struct StateRecorder {
    states: Vec<ThreadState>,
    scratch: Vec<u8>,
}

impl StateRecorder {
    /// All threads start idle (no context loaded).
    pub fn new(num_threads: u32) -> Self {
        StateRecorder {
            states: vec![ThreadState::Idle; num_threads as usize],
            scratch: Vec::with_capacity(state_record_bytes(num_threads)),
        }
    }

    /// Current state of a thread.
    pub fn state(&self, tid: u32) -> ThreadState {
        self.states[tid as usize]
    }

    /// Apply a state change and pack the full record. Returns `None` when
    /// the "change" is a no-op (hardware suppresses redundant records).
    pub fn transition(&mut self, t: u64, tid: u32, state: ThreadState) -> Option<&[u8]> {
        if self.states[tid as usize] == state {
            return None;
        }
        self.states[tid as usize] = state;
        self.scratch.clear();
        self.scratch.push(TAG_STATE);
        self.scratch
            .extend_from_slice(&((t & 0xFFFF_FFFF) as u32).to_le_bytes());
        // Pack 2-bit states little-endian within bytes: thread 0 in bits 1:0.
        let mut byte = 0u8;
        for (i, s) in self.states.iter().enumerate() {
            byte |= s.encode() << ((i % 4) * 2);
            if i % 4 == 3 {
                self.scratch.push(byte);
                byte = 0;
            }
        }
        if !self.states.len().is_multiple_of(4) {
            self.scratch.push(byte);
        }
        Some(&self.scratch)
    }
}

/// Unpack a state record payload (everything after the tag byte) produced by
/// [`StateRecorder::transition`]. Returns `(cycle_lo32, states)`.
pub fn unpack_state_record(payload: &[u8], n: u32) -> (u32, Vec<ThreadState>) {
    let cycle = u32::from_le_bytes(payload[0..4].try_into().expect("4-byte cycle"));
    let mut states = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let b = payload[4 + i / 4];
        states.push(ThreadState::decode((b >> ((i % 4) * 2)) & 0b11));
    }
    (cycle, states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_width_matches_paper_formula() {
        // 8 threads: 2*8+32 = 48 bits = 6 bytes (+1 tag byte in our stream).
        assert_eq!(state_record_bits(8), 48);
        assert_eq!(state_record_bytes(8), 1 + 6);
        // 3 threads: 2*3+32 = 38 bits → 5 payload bytes.
        assert_eq!(state_record_bytes(3), 1 + 5);
    }

    #[test]
    fn transition_packs_all_threads() {
        let mut r = StateRecorder::new(8);
        let rec = r
            .transition(0x1234_5678, 5, ThreadState::Running)
            .expect("real change")
            .to_vec();
        assert_eq!(rec[0], TAG_STATE);
        let (cycle, states) = unpack_state_record(&rec[1..], 8);
        assert_eq!(cycle, 0x1234_5678);
        assert_eq!(states[5], ThreadState::Running);
        for (i, s) in states.iter().enumerate() {
            if i != 5 {
                assert_eq!(*s, ThreadState::Idle);
            }
        }
    }

    #[test]
    fn redundant_transition_suppressed() {
        let mut r = StateRecorder::new(2);
        assert!(r.transition(1, 0, ThreadState::Running).is_some());
        assert!(r.transition(2, 0, ThreadState::Running).is_none());
        assert_eq!(r.state(0), ThreadState::Running);
    }

    #[test]
    fn roundtrip_all_states() {
        let mut r = StateRecorder::new(4);
        let _ = r.transition(10, 0, ThreadState::Running);
        let _ = r.transition(11, 1, ThreadState::Spinning);
        let _ = r.transition(12, 2, ThreadState::Critical);
        let rec = r.transition(13, 3, ThreadState::Running).unwrap().to_vec();
        let (_, states) = unpack_state_record(&rec[1..], 4);
        assert_eq!(
            states,
            vec![
                ThreadState::Running,
                ThreadState::Spinning,
                ThreadState::Critical,
                ThreadState::Running
            ]
        );
    }

    #[test]
    fn region_record_roundtrips() {
        let rec = pack_region_record(0xABCD_1234_5678, 3, 517, true);
        assert_eq!(rec.len(), REGION_RECORD_BYTES);
        assert_eq!(rec[0], TAG_REGION);
        let (tid, cycle, region, enter) = unpack_region_record(&rec[1..]);
        assert_eq!((tid, cycle, region, enter), (3, 0x1234_5678, 517, true));
        let rec = pack_region_record(7, 0, 0, false);
        let (tid, cycle, region, enter) = unpack_region_record(&rec[1..]);
        assert_eq!((tid, cycle, region, enter), (0, 7, 0, false));
    }

    #[test]
    fn cycle_truncates_to_32_bits() {
        let mut r = StateRecorder::new(1);
        let rec = r
            .transition(0x1_0000_0005, 0, ThreadState::Running)
            .unwrap()
            .to_vec();
        let (cycle, _) = unpack_state_record(&rec[1..], 1);
        assert_eq!(cycle, 5, "hardware counter is 32-bit");
    }
}
