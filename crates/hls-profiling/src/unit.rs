//! The profiling unit proper: glue between the datapath snoop interface, the
//! state recorder, the counter bank and the trace buffer.

use crate::buffer::TraceBuffer;
use crate::counters::{CounterBank, CounterSet};
use crate::decode;
use crate::pipeline::{PipelineConfig, PipelineError, PipelineHandle, SinkFactory, StreamReport};
use crate::recorder::StateRecorder;
use fpga_sim::{Snoop, ThreadState};
use paraver::model::{Record, TraceMeta};

/// Configuration of the generated profiling hardware.
#[derive(Clone, Debug)]
pub struct ProfilingConfig {
    /// Event sampling period in cycles ("user-adjustable, ... a proxy over
    /// \[how\] fine-grained information is required, but ... the higher the
    /// period, the more data is produced" — §IV-B.2; note the paper means
    /// the *rate*: shorter periods produce more data).
    pub sampling_period: u64,
    /// Trace buffer size in 512-bit lines.
    pub buffer_lines: usize,
    /// Which counter modules are instantiated.
    pub counters: CounterSet,
    /// Whether the state machine/recorder is instantiated.
    pub record_states: bool,
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        ProfilingConfig {
            sampling_period: 10_000,
            buffer_lines: 512,
            counters: CounterSet::default(),
            record_states: true,
        }
    }
}

/// Decoded output of a profiled run.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Paraver records (time-sorted).
    pub records: Vec<Record>,
    /// Trace metadata for the `.prv` header / `.row` file.
    pub meta: TraceMeta,
    /// Bytes of trace data flushed to external memory (with line padding).
    pub flushed_bytes: u64,
    /// Number of buffer flushes during the run.
    pub flush_count: usize,
}

impl TraceData {
    /// Write the `.prv`/`.pcf`/`.row` bundle under `path_stem`.
    pub fn write_bundle(&self, path_stem: &std::path::Path) -> std::io::Result<()> {
        let mut records = self.records.clone();
        paraver::prv::write_bundle(
            path_stem,
            &self.meta,
            &mut records,
            &paraver::states::defs(),
            &paraver::events::defs(),
        )
    }
}

/// The profiling unit. Implements [`Snoop`] — the hardware's tap points.
///
/// Two drain modes:
///
/// * [`ProfilingUnit::new`] — materialized: the flushed stream accumulates
///   in memory and [`ProfilingUnit::finish`] decodes it after the run.
/// * [`ProfilingUnit::new_streaming`] — streaming: every buffer flush is
///   shipped to a background pipeline thread (decode → bounded sort →
///   sink) over a bounded channel, and
///   [`ProfilingUnit::finish_streaming`] joins it. Peak memory is bounded
///   by buffer + channel + sorter capacity, not by run length.
pub struct ProfilingUnit {
    cfg: ProfilingConfig,
    app_name: String,
    num_threads: u32,
    recorder: StateRecorder,
    counters: CounterBank,
    buffer: TraceBuffer,
    pipeline: Option<PipelineHandle>,
    next_sample: u64,
    total_cycles: u64,
    ended: bool,
}

impl ProfilingUnit {
    /// Instantiate for an accelerator with `num_threads` hardware threads
    /// (materialized drain mode).
    pub fn new(app_name: &str, num_threads: u32, cfg: ProfilingConfig) -> Self {
        Self::build(app_name, num_threads, cfg, None)
    }

    /// Instantiate in streaming mode: flushes feed a background pipeline
    /// which ultimately writes into the sink built by `sink_factory` (called
    /// once, with the final metadata, after the run ends).
    pub fn new_streaming(
        app_name: &str,
        num_threads: u32,
        cfg: ProfilingConfig,
        pipeline_cfg: PipelineConfig,
        sink_factory: SinkFactory,
    ) -> Self {
        let pipeline = PipelineHandle::spawn(
            app_name.to_string(),
            num_threads,
            pipeline_cfg,
            sink_factory,
        );
        Self::build(app_name, num_threads, cfg, Some(pipeline))
    }

    fn build(
        app_name: &str,
        num_threads: u32,
        cfg: ProfilingConfig,
        pipeline: Option<PipelineHandle>,
    ) -> Self {
        let sampling = cfg.sampling_period.max(1);
        ProfilingUnit {
            recorder: StateRecorder::new(num_threads),
            counters: CounterBank::new(num_threads, cfg.counters),
            buffer: match pipeline {
                Some(_) => TraceBuffer::draining(cfg.buffer_lines),
                None => TraceBuffer::new(cfg.buffer_lines),
            },
            pipeline,
            next_sample: sampling,
            cfg,
            app_name: app_name.to_string(),
            num_threads,
            total_cycles: 0,
            ended: false,
        }
    }

    /// The configuration this unit was generated with.
    pub fn config(&self) -> &ProfilingConfig {
        &self.cfg
    }

    /// Whether this unit drains through the background pipeline.
    pub fn is_streaming(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Stage one packed record, draining any triggered flush to the
    /// pipeline in streaming mode.
    fn buf_push(&mut self, t: u64, rec: &[u8]) {
        match &self.pipeline {
            None => self.buffer.push(t, rec),
            Some(p) => self
                .buffer
                .push_with(t, rec, &mut |f, bytes| p.send_chunk(f, bytes.to_vec())),
        }
    }

    /// Sample every thread's aggregates for all boundaries up to `t`.
    fn advance_sampling(&mut self, t: u64) {
        while t >= self.next_sample {
            let boundary = self.next_sample;
            for tid in 0..self.num_threads {
                if let Some(rec) = self.counters.sample(boundary, tid) {
                    self.buf_push(boundary, &rec);
                }
            }
            self.next_sample += self.cfg.sampling_period.max(1);
        }
    }

    /// Consume the unit after the run and decode the buffer stream into
    /// Paraver records (materialized mode only).
    pub fn finish(self) -> TraceData {
        assert!(
            self.ended,
            "finish() before run_end(): trace buffer not flushed"
        );
        assert!(
            self.pipeline.is_none(),
            "streaming unit: use finish_streaming()"
        );
        let records =
            decode::decode_stream(self.buffer.stream(), self.num_threads, self.total_cycles);
        TraceData {
            records,
            meta: TraceMeta::new(&self.app_name, self.total_cycles, self.num_threads),
            flushed_bytes: self.buffer.flushed_bytes(),
            flush_count: self.buffer.flush_count(),
        }
    }

    /// Consume the unit after the run, joining the background pipeline
    /// (streaming mode only).
    pub fn finish_streaming(mut self) -> Result<StreamReport, PipelineError> {
        assert!(
            self.ended,
            "finish_streaming() before run_end(): trace buffer not flushed"
        );
        let pipeline = self
            .pipeline
            .take()
            .expect("materialized unit: use finish()");
        pipeline.finish(
            self.total_cycles,
            self.buffer.flushed_bytes(),
            self.buffer.flush_count(),
        )
    }
}

impl Snoop for ProfilingUnit {
    fn state_change(&mut self, t: u64, tid: u32, state: ThreadState) {
        self.advance_sampling(t);
        if !self.cfg.record_states {
            return;
        }
        if let Some(rec) = self.recorder.transition(t, tid, state) {
            // Stack copy to release the recorder borrow — state records are
            // a tag byte, a timestamp and a per-thread state nibble array,
            // far below this bound even at high thread counts.
            let mut tmp = [0u8; 256];
            let n = rec.len();
            if n <= tmp.len() {
                tmp[..n].copy_from_slice(rec);
                self.buf_push(t, &tmp[..n]);
            } else {
                // >1000 hardware threads: fall back to a heap copy.
                let rec = rec.to_vec();
                self.buf_push(t, &rec);
            }
        }
    }

    fn stall(&mut self, t: u64, tid: u32, cycles: u64) {
        self.advance_sampling(t);
        self.counters.add_stalls(tid, cycles);
    }

    fn ops(&mut self, t: u64, tid: u32, int_ops: u64, flops: u64, local_ops: u64) {
        self.advance_sampling(t);
        self.counters.add_ops(tid, int_ops, flops, local_ops);
    }

    fn mem_read(&mut self, t: u64, tid: u32, bytes: u64) {
        self.advance_sampling(t);
        self.counters.add_read(tid, bytes);
    }

    fn mem_write(&mut self, t: u64, tid: u32, bytes: u64) {
        self.advance_sampling(t);
        self.counters.add_write(tid, bytes);
    }

    fn run_end(&mut self, t: u64) {
        self.advance_sampling(t);
        // Final partial-period sample so no counts are lost.
        for tid in 0..self.num_threads {
            if let Some(rec) = self.counters.sample(t, tid) {
                self.buf_push(t, &rec);
            }
        }
        self.total_cycles = t;
        match &self.pipeline {
            None => self.buffer.flush(t),
            Some(p) => self
                .buffer
                .flush_with(t, &mut |f, bytes| p.send_chunk(f, bytes.to_vec())),
        }
        self.ended = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraver::analysis::StateProfile;

    #[test]
    fn end_to_end_state_and_event_decode() {
        let mut u = ProfilingUnit::new(
            "t",
            2,
            ProfilingConfig {
                sampling_period: 100,
                ..Default::default()
            },
        );
        u.state_change(0, 0, ThreadState::Idle); // suppressed (already idle)
        u.state_change(10, 0, ThreadState::Running);
        u.ops(20, 0, 4, 8, 0);
        u.mem_read(30, 0, 64);
        u.state_change(50, 1, ThreadState::Running);
        u.ops(150, 1, 2, 2, 2); // second sampling period
        u.state_change(400, 0, ThreadState::Idle);
        u.state_change(420, 1, ThreadState::Idle);
        u.run_end(500);
        let td = u.finish();
        assert_eq!(td.meta.num_threads, 2);
        assert_eq!(td.meta.duration, 500);
        assert!(td.flushed_bytes > 0);

        let prof = StateProfile::compute(&td.records, 2);
        // Thread 0: idle 0–10, running 10–400, idle 400–500.
        let t0_running: u64 = prof.per_thread[0]
            .get(&paraver::states::RUNNING)
            .copied()
            .unwrap_or(0);
        assert_eq!(t0_running, 390);
        // Events: flops of thread 0 in first period.
        let flops = paraver::analysis::event_total(&td.records, paraver::events::FLOPS);
        assert_eq!(flops, 8 + 2);
        let reads = paraver::analysis::event_total(&td.records, paraver::events::BYTES_READ);
        assert_eq!(reads, 64);
    }

    #[test]
    fn sampling_period_controls_record_count() {
        let run = |period: u64| {
            let mut u = ProfilingUnit::new(
                "t",
                1,
                ProfilingConfig {
                    sampling_period: period,
                    ..Default::default()
                },
            );
            u.state_change(0, 0, ThreadState::Running);
            for t in 0..100 {
                u.ops(t * 10, 0, 1, 1, 0);
            }
            u.run_end(1000);
            u.finish()
                .records
                .iter()
                .filter(|r| matches!(r, Record::Event { .. }))
                .count()
        };
        let fine = run(10);
        let coarse = run(500);
        assert!(
            fine > coarse * 4,
            "10× shorter period must yield many more samples: {fine} vs {coarse}"
        );
    }

    #[test]
    #[should_panic(expected = "before run_end")]
    fn finish_requires_run_end() {
        let u = ProfilingUnit::new("t", 1, ProfilingConfig::default());
        let _ = u.finish();
    }

    #[test]
    fn states_disabled_still_counts_events() {
        let mut u = ProfilingUnit::new(
            "t",
            1,
            ProfilingConfig {
                record_states: false,
                ..Default::default()
            },
        );
        u.state_change(0, 0, ThreadState::Running);
        u.ops(5, 0, 1, 2, 3);
        u.run_end(100);
        let td = u.finish();
        // No transitions were recorded, so the only state records are the
        // synthetic whole-run Idle intervals the decoder closes.
        assert!(td.records.iter().all(|r| match r {
            Record::State {
                state, begin, end, ..
            } => *state == paraver::states::IDLE && (*begin, *end) == (0, 100),
            _ => true,
        }));
        assert_eq!(
            paraver::analysis::event_total(&td.records, paraver::events::FLOPS),
            2
        );
    }
}
