//! The profiling unit proper: glue between the datapath snoop interface, the
//! state recorder, the counter bank and the trace buffer.

use crate::buffer::TraceBuffer;
use crate::counters::{CounterBank, CounterSet};
use crate::decode;
use crate::pipeline::{PipelineConfig, PipelineError, PipelineHandle, SinkFactory, StreamReport};
use crate::recorder::{pack_region_record, StateRecorder};
use fpga_sim::{Snoop, ThreadState};
use nymble_hls::probe::{CounterClass, ProbePlan};
use nymble_hls::region::RegionKind;
use paraver::model::{Record, TraceMeta};
use std::fmt;
use std::sync::Arc;

/// Configuration of the generated profiling hardware.
#[derive(Clone, Debug)]
pub struct ProfilingConfig {
    /// Event sampling period in cycles ("user-adjustable, ... a proxy over
    /// \[how\] fine-grained information is required, but ... the higher the
    /// period, the more data is produced" — §IV-B.2; note the paper means
    /// the *rate*: shorter periods produce more data).
    pub sampling_period: u64,
    /// Trace buffer size in 512-bit lines.
    pub buffer_lines: usize,
    /// Which counter modules are instantiated.
    pub counters: CounterSet,
    /// Whether the state machine/recorder is instantiated.
    pub record_states: bool,
    /// Auto-probe plan driving the instrumentation (`--profile=auto`).
    /// When set, [`Self::with_plan`] has aligned `counters` with the plan's
    /// selected event classes and the unit additionally emits region
    /// enter/exit records for the plan's instrumented regions.
    pub plan: Option<Arc<ProbePlan>>,
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        ProfilingConfig {
            sampling_period: 10_000,
            buffer_lines: 512,
            counters: CounterSet::default(),
            record_states: true,
            plan: None,
        }
    }
}

/// Why a [`ProfilingConfig`] cannot describe buildable hardware (the
/// profiling analogue of `fpga_sim::SimConfig::validate`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfilingConfigError {
    /// The sampling timer cannot fire every zero cycles.
    ZeroSamplingPeriod,
    /// A trace buffer of zero lines can never hold a record.
    ZeroBufferLines,
    /// The attached auto-probe plan selects no counters and no regions —
    /// the budget was too small to instrument anything.
    EmptyPlan {
        /// The budget the degenerate plan was solved under.
        budget_alms: u32,
    },
}

impl fmt::Display for ProfilingConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfilingConfigError::ZeroSamplingPeriod => {
                write!(f, "sampling_period must be at least 1 cycle")
            }
            ProfilingConfigError::ZeroBufferLines => {
                write!(f, "buffer_lines must be at least 1 trace line")
            }
            ProfilingConfigError::EmptyPlan { budget_alms } => write!(
                f,
                "auto-probe budget of {budget_alms} ALMs selects nothing: \
                 raise the budget (one counter costs ~30 ALMs plus ~4 per thread)"
            ),
        }
    }
}

impl std::error::Error for ProfilingConfigError {}

impl ProfilingConfig {
    /// Check the configuration describes buildable profiling hardware.
    /// Note an all-off unit (`CounterSet::NONE`, no state recorder) is
    /// *valid* — it is the baseline of the §V-B overhead study.
    pub fn validate(&self) -> Result<(), ProfilingConfigError> {
        if self.sampling_period == 0 {
            return Err(ProfilingConfigError::ZeroSamplingPeriod);
        }
        if self.buffer_lines == 0 {
            return Err(ProfilingConfigError::ZeroBufferLines);
        }
        if let Some(plan) = &self.plan {
            if plan.counters.is_empty() && plan.regions.is_empty() {
                return Err(ProfilingConfigError::EmptyPlan {
                    budget_alms: plan.budget_alms,
                });
            }
        }
        Ok(())
    }

    /// Drive the instrumentation from an auto-probe plan: the counter set
    /// becomes exactly the plan's selected event classes, and the unit will
    /// emit region records for the plan's instrumented regions.
    pub fn with_plan(mut self, plan: Arc<ProbePlan>) -> Self {
        let mut set = CounterSet::NONE;
        for c in &plan.counters {
            match c {
                CounterClass::Stalls => set.stalls = true,
                CounterClass::IntOps => set.int_ops = true,
                CounterClass::Flops => set.flops = true,
                CounterClass::MemRead => set.mem_read = true,
                CounterClass::MemWrite => set.mem_write = true,
                CounterClass::LocalOps => set.local_ops = true,
            }
        }
        self.counters = set;
        self.plan = Some(plan);
        self
    }
}

/// Decoded output of a profiled run.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Paraver records (time-sorted).
    pub records: Vec<Record>,
    /// Trace metadata for the `.prv` header / `.row` file.
    pub meta: TraceMeta,
    /// Bytes of trace data flushed to external memory (with line padding).
    pub flushed_bytes: u64,
    /// Number of buffer flushes during the run.
    pub flush_count: usize,
    /// The auto-probe plan the unit recorded under, when there was one;
    /// carried so the bundle's `.pcf`/`.row` can name the regions.
    pub plan: Option<Arc<ProbePlan>>,
}

impl TraceData {
    /// Write the `.prv`/`.pcf`/`.row` bundle under `path_stem`. Under an
    /// auto-probe plan the `.pcf` event table gains one entry per
    /// instrumented region and the `.row` a `LEVEL REGION` hierarchy.
    pub fn write_bundle(&self, path_stem: &std::path::Path) -> std::io::Result<()> {
        let mut records = self.records.clone();
        let (event_defs, row_regions) = match &self.plan {
            None => (paraver::events::defs(), Vec::new()),
            Some(plan) => (
                paraver::events::defs_with_regions(&plan.pcf_regions()),
                plan.row_regions(),
            ),
        };
        paraver::prv::write_bundle_with_regions(
            path_stem,
            &self.meta,
            &mut records,
            &paraver::states::defs(),
            &event_defs,
            row_regions,
        )
    }
}

/// Runtime region tracking derived from the plan: which probes exist and
/// which edges each thread currently sits inside. All of it is driven by
/// the *existing* snoop signals (state transitions and run end) — the
/// datapath taps are identical with and without a plan; only what gets
/// recorded differs.
struct RegionEmitter {
    /// The kernel-root cycle probe is selected.
    root: bool,
    /// The critical-section probe runtime events map to: the hardware has a
    /// single semaphore, so every critical transition attributes to the
    /// plan's highest-ranked selected critical region.
    critical: Option<u16>,
    /// Per-thread: first Running seen (root entered).
    started: Vec<bool>,
    /// Per-thread: currently inside a critical section.
    in_critical: Vec<bool>,
}

impl RegionEmitter {
    fn new(plan: &ProbePlan, num_threads: u32) -> Self {
        RegionEmitter {
            root: plan.region(0).is_some(),
            critical: plan
                .regions
                .iter()
                .filter(|r| r.kind == RegionKind::Critical)
                .max_by_key(|r| r.score)
                .map(|r| r.id),
            started: vec![false; num_threads as usize],
            in_critical: vec![false; num_threads as usize],
        }
    }
}

/// The profiling unit. Implements [`Snoop`] — the hardware's tap points.
///
/// Two drain modes:
///
/// * [`ProfilingUnit::new`] — materialized: the flushed stream accumulates
///   in memory and [`ProfilingUnit::finish`] decodes it after the run.
/// * [`ProfilingUnit::new_streaming`] — streaming: every buffer flush is
///   shipped to a background pipeline thread (decode → bounded sort →
///   sink) over a bounded channel, and
///   [`ProfilingUnit::finish_streaming`] joins it. Peak memory is bounded
///   by buffer + channel + sorter capacity, not by run length.
pub struct ProfilingUnit {
    cfg: ProfilingConfig,
    app_name: String,
    num_threads: u32,
    recorder: StateRecorder,
    counters: CounterBank,
    buffer: TraceBuffer,
    pipeline: Option<PipelineHandle>,
    regions: Option<RegionEmitter>,
    next_sample: u64,
    total_cycles: u64,
    ended: bool,
}

impl ProfilingUnit {
    /// Instantiate for an accelerator with `num_threads` hardware threads
    /// (materialized drain mode).
    pub fn new(app_name: &str, num_threads: u32, cfg: ProfilingConfig) -> Self {
        Self::build(app_name, num_threads, cfg, None)
    }

    /// Instantiate in streaming mode: flushes feed a background pipeline
    /// which ultimately writes into the sink built by `sink_factory` (called
    /// once, with the final metadata, after the run ends).
    pub fn new_streaming(
        app_name: &str,
        num_threads: u32,
        cfg: ProfilingConfig,
        pipeline_cfg: PipelineConfig,
        sink_factory: SinkFactory,
    ) -> Self {
        let pipeline = PipelineHandle::spawn(
            app_name.to_string(),
            num_threads,
            pipeline_cfg,
            sink_factory,
        );
        Self::build(app_name, num_threads, cfg, Some(pipeline))
    }

    fn build(
        app_name: &str,
        num_threads: u32,
        cfg: ProfilingConfig,
        pipeline: Option<PipelineHandle>,
    ) -> Self {
        // A degenerate config used to be clamped silently (`.max(1)` on the
        // period); now it is a hard, typed error at construction.
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        ProfilingUnit {
            recorder: StateRecorder::new(num_threads),
            counters: CounterBank::new(num_threads, cfg.counters),
            buffer: match pipeline {
                Some(_) => TraceBuffer::draining(cfg.buffer_lines),
                None => TraceBuffer::new(cfg.buffer_lines),
            },
            pipeline,
            regions: cfg
                .plan
                .as_deref()
                .map(|plan| RegionEmitter::new(plan, num_threads)),
            next_sample: cfg.sampling_period,
            cfg,
            app_name: app_name.to_string(),
            num_threads,
            total_cycles: 0,
            ended: false,
        }
    }

    /// The configuration this unit was generated with.
    pub fn config(&self) -> &ProfilingConfig {
        &self.cfg
    }

    /// Whether this unit drains through the background pipeline.
    pub fn is_streaming(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Stage one packed record, draining any triggered flush to the
    /// pipeline in streaming mode.
    fn buf_push(&mut self, t: u64, rec: &[u8]) {
        match &self.pipeline {
            None => self.buffer.push(t, rec),
            Some(p) => self
                .buffer
                .push_with(t, rec, &mut |f, bytes| p.send_chunk(f, bytes.to_vec())),
        }
    }

    /// Sample every thread's aggregates for all boundaries up to `t`.
    fn advance_sampling(&mut self, t: u64) {
        while t >= self.next_sample {
            let boundary = self.next_sample;
            for tid in 0..self.num_threads {
                if let Some(rec) = self.counters.sample(boundary, tid) {
                    self.buf_push(boundary, &rec);
                }
            }
            self.next_sample += self.cfg.sampling_period;
        }
    }

    /// Derive region enter/exit records from a state transition. Purely a
    /// recording decision: the tap is the same state signal the recorder
    /// snoops, so instrumented and uninstrumented runs execute identically.
    fn region_transition(&mut self, t: u64, tid: u32, state: ThreadState) {
        let Some(re) = &mut self.regions else { return };
        let i = tid as usize;
        let mut recs = [None, None];
        if state != ThreadState::Idle && !re.started[i] {
            re.started[i] = true;
            if re.root {
                recs[0] = Some(pack_region_record(t, tid, 0, true));
            }
        }
        if state == ThreadState::Critical {
            if !re.in_critical[i] {
                re.in_critical[i] = true;
                recs[1] = re.critical.map(|cr| pack_region_record(t, tid, cr, true));
            }
        } else if re.in_critical[i] {
            re.in_critical[i] = false;
            recs[1] = re.critical.map(|cr| pack_region_record(t, tid, cr, false));
        }
        for rec in recs.into_iter().flatten() {
            self.buf_push(t, &rec);
        }
    }

    /// Consume the unit after the run and decode the buffer stream into
    /// Paraver records (materialized mode only).
    pub fn finish(self) -> TraceData {
        assert!(
            self.ended,
            "finish() before run_end(): trace buffer not flushed"
        );
        assert!(
            self.pipeline.is_none(),
            "streaming unit: use finish_streaming()"
        );
        let records =
            decode::decode_stream(self.buffer.stream(), self.num_threads, self.total_cycles);
        TraceData {
            records,
            meta: TraceMeta::new(&self.app_name, self.total_cycles, self.num_threads),
            flushed_bytes: self.buffer.flushed_bytes(),
            flush_count: self.buffer.flush_count(),
            plan: self.cfg.plan.clone(),
        }
    }

    /// Consume the unit after the run, joining the background pipeline
    /// (streaming mode only).
    pub fn finish_streaming(mut self) -> Result<StreamReport, PipelineError> {
        assert!(
            self.ended,
            "finish_streaming() before run_end(): trace buffer not flushed"
        );
        let pipeline = self
            .pipeline
            .take()
            .expect("materialized unit: use finish()");
        pipeline.finish(
            self.total_cycles,
            self.buffer.flushed_bytes(),
            self.buffer.flush_count(),
        )
    }
}

impl Snoop for ProfilingUnit {
    fn state_change(&mut self, t: u64, tid: u32, state: ThreadState) {
        self.advance_sampling(t);
        self.region_transition(t, tid, state);
        if !self.cfg.record_states {
            return;
        }
        if let Some(rec) = self.recorder.transition(t, tid, state) {
            // Stack copy to release the recorder borrow — state records are
            // a tag byte, a timestamp and a per-thread state nibble array,
            // far below this bound even at high thread counts.
            let mut tmp = [0u8; 256];
            let n = rec.len();
            if n <= tmp.len() {
                tmp[..n].copy_from_slice(rec);
                self.buf_push(t, &tmp[..n]);
            } else {
                // >1000 hardware threads: fall back to a heap copy.
                let rec = rec.to_vec();
                self.buf_push(t, &rec);
            }
        }
    }

    fn stall(&mut self, t: u64, tid: u32, cycles: u64) {
        self.advance_sampling(t);
        self.counters.add_stalls(tid, cycles);
    }

    fn ops(&mut self, t: u64, tid: u32, int_ops: u64, flops: u64, local_ops: u64) {
        self.advance_sampling(t);
        self.counters.add_ops(tid, int_ops, flops, local_ops);
    }

    fn mem_read(&mut self, t: u64, tid: u32, bytes: u64) {
        self.advance_sampling(t);
        self.counters.add_read(tid, bytes);
    }

    fn mem_write(&mut self, t: u64, tid: u32, bytes: u64) {
        self.advance_sampling(t);
        self.counters.add_write(tid, bytes);
    }

    fn run_end(&mut self, t: u64) {
        self.advance_sampling(t);
        // Final partial-period sample so no counts are lost.
        for tid in 0..self.num_threads {
            if let Some(rec) = self.counters.sample(t, tid) {
                self.buf_push(t, &rec);
            }
        }
        // Close every open region edge: the kernel root spans first start to
        // run end, and a thread parked inside a critical section exits it.
        if let Some(re) = self.regions.take() {
            for tid in 0..self.num_threads {
                let i = tid as usize;
                if re.in_critical[i] {
                    if let Some(cr) = re.critical {
                        self.buf_push(t, &pack_region_record(t, tid, cr, false));
                    }
                }
                if re.started[i] && re.root {
                    self.buf_push(t, &pack_region_record(t, tid, 0, false));
                }
            }
        }
        self.total_cycles = t;
        match &self.pipeline {
            None => self.buffer.flush(t),
            Some(p) => self
                .buffer
                .flush_with(t, &mut |f, bytes| p.send_chunk(f, bytes.to_vec())),
        }
        self.ended = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraver::analysis::StateProfile;

    #[test]
    fn end_to_end_state_and_event_decode() {
        let mut u = ProfilingUnit::new(
            "t",
            2,
            ProfilingConfig {
                sampling_period: 100,
                ..Default::default()
            },
        );
        u.state_change(0, 0, ThreadState::Idle); // suppressed (already idle)
        u.state_change(10, 0, ThreadState::Running);
        u.ops(20, 0, 4, 8, 0);
        u.mem_read(30, 0, 64);
        u.state_change(50, 1, ThreadState::Running);
        u.ops(150, 1, 2, 2, 2); // second sampling period
        u.state_change(400, 0, ThreadState::Idle);
        u.state_change(420, 1, ThreadState::Idle);
        u.run_end(500);
        let td = u.finish();
        assert_eq!(td.meta.num_threads, 2);
        assert_eq!(td.meta.duration, 500);
        assert!(td.flushed_bytes > 0);

        let prof = StateProfile::compute(&td.records, 2);
        // Thread 0: idle 0–10, running 10–400, idle 400–500.
        let t0_running: u64 = prof.per_thread[0]
            .get(&paraver::states::RUNNING)
            .copied()
            .unwrap_or(0);
        assert_eq!(t0_running, 390);
        // Events: flops of thread 0 in first period.
        let flops = paraver::analysis::event_total(&td.records, paraver::events::FLOPS);
        assert_eq!(flops, 8 + 2);
        let reads = paraver::analysis::event_total(&td.records, paraver::events::BYTES_READ);
        assert_eq!(reads, 64);
    }

    #[test]
    fn sampling_period_controls_record_count() {
        let run = |period: u64| {
            let mut u = ProfilingUnit::new(
                "t",
                1,
                ProfilingConfig {
                    sampling_period: period,
                    ..Default::default()
                },
            );
            u.state_change(0, 0, ThreadState::Running);
            for t in 0..100 {
                u.ops(t * 10, 0, 1, 1, 0);
            }
            u.run_end(1000);
            u.finish()
                .records
                .iter()
                .filter(|r| matches!(r, Record::Event { .. }))
                .count()
        };
        let fine = run(10);
        let coarse = run(500);
        assert!(
            fine > coarse * 4,
            "10× shorter period must yield many more samples: {fine} vs {coarse}"
        );
    }

    #[test]
    #[should_panic(expected = "before run_end")]
    fn finish_requires_run_end() {
        let u = ProfilingUnit::new("t", 1, ProfilingConfig::default());
        let _ = u.finish();
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        use crate::unit::ProfilingConfigError as E;
        let zero_period = ProfilingConfig {
            sampling_period: 0,
            ..Default::default()
        };
        assert_eq!(zero_period.validate(), Err(E::ZeroSamplingPeriod));
        let zero_buffer = ProfilingConfig {
            buffer_lines: 0,
            ..Default::default()
        };
        assert_eq!(zero_buffer.validate(), Err(E::ZeroBufferLines));
        // The all-off unit is the overhead study's baseline — still valid.
        let baseline = ProfilingConfig {
            counters: CounterSet::NONE,
            record_states: false,
            ..Default::default()
        };
        assert_eq!(baseline.validate(), Ok(()));
        assert!(ProfilingConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "sampling_period")]
    fn constructing_a_degenerate_unit_panics_with_the_typed_message() {
        let _ = ProfilingUnit::new(
            "t",
            1,
            ProfilingConfig {
                sampling_period: 0,
                ..Default::default()
            },
        );
    }

    fn critical_kernel_plan() -> std::sync::Arc<nymble_hls::ProbePlan> {
        use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};
        let mut kb = KernelBuilder::new("crit", 2);
        let c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
        let x = kb.var("x", Type::F32);
        let n = kb.c_i64(32);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(c, i, Type::F32);
            let s = kb.add(v, v);
            kb.set(x, s);
        });
        kb.critical(|kb| {
            let zero = kb.c_i64(0);
            let v = kb.load(c, zero, Type::F32);
            let s = kb.add(v, v);
            kb.store(c, zero, s);
        });
        let k = kb.finish();
        let cfg = nymble_hls::HlsConfig {
            probe: nymble_hls::ProbeMode::auto(),
            ..Default::default()
        };
        nymble_hls::compile(&k, &cfg)
            .probe_plan
            .expect("auto mode attaches a plan")
    }

    #[test]
    fn empty_plan_is_a_typed_error() {
        use crate::unit::ProfilingConfigError as E;
        let plan = std::sync::Arc::new(nymble_hls::probe::ProbePlan {
            budget_alms: 0,
            counters: vec![],
            regions: vec![],
            skipped_regions: 3,
            cost_alms: 0,
            cost_regs: 0,
        });
        let cfg = ProfilingConfig::default().with_plan(plan);
        assert_eq!(cfg.validate(), Err(E::EmptyPlan { budget_alms: 0 }));
    }

    #[test]
    fn plan_drives_region_records_and_bundle_sections() {
        let plan = critical_kernel_plan();
        assert!(plan.covers_default_set());
        let mut u = ProfilingUnit::new(
            "crit",
            2,
            ProfilingConfig {
                sampling_period: 100,
                ..Default::default()
            }
            .with_plan(plan.clone()),
        );
        u.state_change(5, 0, ThreadState::Running);
        u.state_change(8, 1, ThreadState::Running);
        u.state_change(50, 0, ThreadState::Critical);
        u.state_change(90, 0, ThreadState::Running);
        u.run_end(200);
        let td = u.finish();

        let crit_id = plan
            .regions
            .iter()
            .find(|r| r.label.contains("critical"))
            .expect("critical region selected")
            .id;
        let mut got = Vec::new();
        for r in &td.records {
            if let Record::Event {
                thread,
                time,
                events,
            } = r
            {
                for (ty, v) in events {
                    if *ty >= paraver::events::REGION_BASE {
                        got.push((*thread, *time, *ty, *v));
                    }
                }
            }
        }
        let root = paraver::events::region_type(0);
        let crit = paraver::events::region_type(crit_id);
        assert!(got.contains(&(0, 5, root, 1)), "{got:?}");
        assert!(got.contains(&(1, 8, root, 1)), "{got:?}");
        assert!(got.contains(&(0, 50, crit, 1)), "{got:?}");
        assert!(got.contains(&(0, 90, crit, 0)), "{got:?}");
        assert!(got.contains(&(0, 200, root, 0)), "{got:?}");
        assert!(got.contains(&(1, 200, root, 0)), "{got:?}");

        // The bundle names the regions in the .pcf and .row.
        let dir = std::env::temp_dir().join(format!("probe-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("crit");
        td.write_bundle(&stem).unwrap();
        let pcf = std::fs::read_to_string(stem.with_extension("pcf")).unwrap();
        assert!(pcf.contains(&format!("{root}    Region: crit")), "{pcf}");
        let row = std::fs::read_to_string(stem.with_extension("row")).unwrap();
        let regions = paraver::row::parse_regions(&row);
        assert_eq!(regions.len(), plan.regions.len());
        assert_eq!(regions[0], (0, "crit".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_without_probes_for_a_state_leaves_the_stream_plain() {
        // A plan whose budget only afforded the root and one counter emits
        // no critical-region records even when threads enter criticals.
        let plan = critical_kernel_plan();
        let p = nymble_hls::ProbeCostParams::default();
        let tight = std::sync::Arc::new(nymble_hls::probe::ProbePlan {
            budget_alms: 2 * p.alms_per_counter(2) as u32,
            counters: vec![nymble_hls::CounterClass::Stalls],
            regions: plan.regions[..1].to_vec(),
            skipped_regions: plan.regions.len() - 1,
            cost_alms: 2 * p.alms_per_counter(2),
            cost_regs: 2 * p.regs_per_counter(2),
        });
        let mut u = ProfilingUnit::new(
            "crit",
            2,
            ProfilingConfig {
                sampling_period: 100,
                ..Default::default()
            }
            .with_plan(tight),
        );
        u.state_change(5, 0, ThreadState::Running);
        u.state_change(50, 0, ThreadState::Critical);
        u.state_change(90, 0, ThreadState::Running);
        u.run_end(200);
        let td = u.finish();
        let region_events: Vec<u32> = td
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Event { events, .. } if events[0].0 >= paraver::events::REGION_BASE => {
                    Some(events[0].0)
                }
                _ => None,
            })
            .collect();
        let root = paraver::events::region_type(0);
        assert!(!region_events.is_empty());
        assert!(
            region_events.iter().all(|ty| *ty == root),
            "{region_events:?}"
        );
    }

    #[test]
    fn states_disabled_still_counts_events() {
        let mut u = ProfilingUnit::new(
            "t",
            1,
            ProfilingConfig {
                record_states: false,
                ..Default::default()
            },
        );
        u.state_change(0, 0, ThreadState::Running);
        u.ops(5, 0, 1, 2, 3);
        u.run_end(100);
        let td = u.finish();
        // No transitions were recorded, so the only state records are the
        // synthetic whole-run Idle intervals the decoder closes.
        assert!(td.records.iter().all(|r| match r {
            Record::State {
                state, begin, end, ..
            } => *state == paraver::states::IDLE && (*begin, *end) == (0, 100),
            _ => true,
        }));
        assert_eq!(
            paraver::analysis::event_total(&td.records, paraver::events::FLOPS),
            2
        );
    }
}
