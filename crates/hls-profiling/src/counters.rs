//! Event performance counters (§IV-B.2).
//!
//! "For each of the supported events, we added a performance counter module
//! to the accelerator. As we need to aggregate values from multiple sources
//! ... this module has two inputs for each source: the event to be recorded
//! from that source, and a condition if the value is valid. In each clock
//! cycle, all valid values are added to the running aggregate. All
//! aggregated events are periodically flushed to external memory. This
//! period is user-adjustable."

use crate::recorder::TAG_EVENT;

/// Which counter modules are instantiated (per-counter ablation of the
/// §V-B observation that "each of the counters contributes similarly to the
/// hardware overhead").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSet {
    pub stalls: bool,
    pub int_ops: bool,
    pub flops: bool,
    pub mem_read: bool,
    pub mem_write: bool,
    pub local_ops: bool,
}

impl Default for CounterSet {
    fn default() -> Self {
        CounterSet {
            stalls: true,
            int_ops: true,
            flops: true,
            mem_read: true,
            mem_write: true,
            local_ops: true,
        }
    }
}

impl CounterSet {
    /// Nothing enabled (profiling compiled out).
    pub const NONE: CounterSet = CounterSet {
        stalls: false,
        int_ops: false,
        flops: false,
        mem_read: false,
        mem_write: false,
        local_ops: false,
    };

    /// Number of instantiated counter modules.
    pub fn count(&self) -> u32 {
        [
            self.stalls,
            self.int_ops,
            self.flops,
            self.mem_read,
            self.mem_write,
            self.local_ops,
        ]
        .iter()
        .filter(|b| **b)
        .count() as u32
    }
}

/// Aggregation registers of one thread for one sampling period.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    pub stalls: u64,
    pub int_ops: u64,
    pub flops: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub local_ops: u64,
}

impl Aggregate {
    /// True when every register is zero (record suppressed).
    pub fn is_zero(&self) -> bool {
        *self == Aggregate::default()
    }
}

/// Size of a packed event record in bytes:
/// tag + tid + 32-bit cycle + six 32-bit aggregates.
pub const EVENT_RECORD_BYTES: usize = 1 + 1 + 4 + 6 * 4;

/// The bank of counter modules for all threads.
#[derive(Clone, Debug)]
pub struct CounterBank {
    set: CounterSet,
    agg: Vec<Aggregate>,
}

impl CounterBank {
    pub fn new(num_threads: u32, set: CounterSet) -> Self {
        CounterBank {
            set,
            agg: vec![Aggregate::default(); num_threads as usize],
        }
    }

    /// The instantiated counter set.
    pub fn set(&self) -> CounterSet {
        self.set
    }

    pub fn add_stalls(&mut self, tid: u32, v: u64) {
        if self.set.stalls {
            self.agg[tid as usize].stalls += v;
        }
    }

    pub fn add_ops(&mut self, tid: u32, int_ops: u64, flops: u64, local_ops: u64) {
        let a = &mut self.agg[tid as usize];
        if self.set.int_ops {
            a.int_ops += int_ops;
        }
        if self.set.flops {
            a.flops += flops;
        }
        if self.set.local_ops {
            a.local_ops += local_ops;
        }
    }

    pub fn add_read(&mut self, tid: u32, bytes: u64) {
        if self.set.mem_read {
            self.agg[tid as usize].bytes_read += bytes;
        }
    }

    pub fn add_write(&mut self, tid: u32, bytes: u64) {
        if self.set.mem_write {
            self.agg[tid as usize].bytes_written += bytes;
        }
    }

    /// Sample one thread: pack its aggregate into a record and reset the
    /// registers. Returns `None` when the aggregate is all-zero (the
    /// hardware suppresses the write to save buffer bandwidth).
    pub fn sample(&mut self, t: u64, tid: u32) -> Option<[u8; EVENT_RECORD_BYTES]> {
        let a = std::mem::take(&mut self.agg[tid as usize]);
        if a.is_zero() {
            return None;
        }
        let mut rec = [0u8; EVENT_RECORD_BYTES];
        rec[0] = TAG_EVENT;
        rec[1] = tid as u8;
        rec[2..6].copy_from_slice(&((t & 0xFFFF_FFFF) as u32).to_le_bytes());
        let sat = |v: u64| (v.min(u32::MAX as u64) as u32).to_le_bytes();
        rec[6..10].copy_from_slice(&sat(a.stalls));
        rec[10..14].copy_from_slice(&sat(a.int_ops));
        rec[14..18].copy_from_slice(&sat(a.flops));
        rec[18..22].copy_from_slice(&sat(a.bytes_read));
        rec[22..26].copy_from_slice(&sat(a.bytes_written));
        rec[26..30].copy_from_slice(&sat(a.local_ops));
        Some(rec)
    }

    /// Number of threads.
    pub fn threads(&self) -> u32 {
        self.agg.len() as u32
    }
}

/// Unpack an event record payload (after the tag byte):
/// `(tid, cycle_lo32, aggregate)`.
pub fn unpack_event_record(payload: &[u8]) -> (u32, u32, Aggregate) {
    let tid = payload[0] as u32;
    let rd = |i: usize| u32::from_le_bytes(payload[i..i + 4].try_into().unwrap()) as u64;
    let cycle = rd(1) as u32;
    (
        tid,
        cycle,
        Aggregate {
            stalls: rd(5),
            int_ops: rd(9),
            flops: rd(13),
            bytes_read: rd(17),
            bytes_written: rd(21),
            local_ops: rd(25),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_and_reset() {
        let mut b = CounterBank::new(2, CounterSet::default());
        b.add_ops(0, 3, 5, 1);
        b.add_ops(0, 2, 0, 0);
        b.add_read(0, 64);
        b.add_stalls(1, 7);
        let rec = b.sample(1000, 0).expect("nonzero");
        let (tid, cycle, a) = unpack_event_record(&rec[1..]);
        assert_eq!(tid, 0);
        assert_eq!(cycle, 1000);
        assert_eq!(a.int_ops, 5);
        assert_eq!(a.flops, 5);
        assert_eq!(a.bytes_read, 64);
        // Registers reset after sampling.
        assert!(b.sample(2000, 0).is_none());
        // Thread 1 still pending.
        let rec1 = b.sample(2000, 1).unwrap();
        let (_, _, a1) = unpack_event_record(&rec1[1..]);
        assert_eq!(a1.stalls, 7);
    }

    #[test]
    fn disabled_counters_record_nothing() {
        let mut b = CounterBank::new(1, CounterSet::NONE);
        b.add_ops(0, 5, 5, 5);
        b.add_read(0, 100);
        b.add_stalls(0, 9);
        assert!(b.sample(10, 0).is_none());
        assert_eq!(CounterSet::NONE.count(), 0);
        assert_eq!(CounterSet::default().count(), 6);
    }

    #[test]
    fn saturating_pack() {
        let mut b = CounterBank::new(1, CounterSet::default());
        b.add_read(0, u64::MAX / 2);
        let rec = b.sample(1, 0).unwrap();
        let (_, _, a) = unpack_event_record(&rec[1..]);
        assert_eq!(a.bytes_read, u32::MAX as u64, "32-bit hardware saturates");
    }

    #[test]
    fn partial_counter_sets() {
        let set = CounterSet {
            stalls: true,
            int_ops: false,
            flops: false,
            mem_read: false,
            mem_write: false,
            local_ops: false,
        };
        let mut b = CounterBank::new(1, set);
        b.add_ops(0, 100, 100, 100);
        assert!(b.sample(1, 0).is_none(), "only stalls instantiated");
        b.add_stalls(0, 1);
        assert!(b.sample(2, 0).is_some());
    }
}
