//! The background trace pipeline: decode + sort + write off the simulation
//! thread, behind a bounded channel.
//!
//! In the materialized path, the whole flushed stream accumulates in memory
//! and is decoded/sorted/written after the run. This module is the streaming
//! alternative: each trace-buffer flush is handed (as one bounded-size
//! chunk) to a worker thread over a [`std::sync::mpsc::sync_channel`], which
//! incrementally decodes it and feeds the records through a
//! [`paraver::SpillSorter`] into whatever [`TraceSink`] the caller's factory
//! builds once the run's final metadata is known (the `.prv` header needs
//! the total duration, which only exists at `run_end`).
//!
//! Memory stays bounded by construction, independent of run length:
//!
//! * simulation side — one trace buffer (`buffer_lines × 64 B`);
//! * in flight — at most [`PipelineConfig::channel_capacity`] chunks, each at
//!   most one buffer flush;
//! * worker side — at most [`PipelineConfig::max_in_memory_records`] decoded
//!   records plus one record per spilled run during the final merge.
//!
//! The bounded channel provides backpressure: if decoding falls behind, the
//! simulator blocks on the next flush rather than queueing unboundedly —
//! the software analogue of the hardware buffer stalling the datapath when
//! the DRAM port is busy.

use crate::buffer::Flush;
use crate::decode::StreamDecoder;
use paraver::spill::DEFAULT_MAX_IN_MEMORY;
use paraver::{SpillSorter, TraceError, TraceMeta, TraceSink};
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// Builds the terminal sink once the run's final metadata is known.
pub type SinkFactory =
    Box<dyn FnOnce(&TraceMeta) -> Result<Box<dyn TraceSink + Send>, TraceError> + Send + 'static>;

/// Tuning knobs of the background pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Maximum flush chunks in flight between simulator and worker.
    pub channel_capacity: usize,
    /// Maximum decoded records the sorter holds in RAM before spilling a
    /// run to disk.
    pub max_in_memory_records: usize,
    /// Spill directory override (defaults to the system temp dir).
    pub spill_dir: Option<PathBuf>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            channel_capacity: 8,
            max_in_memory_records: DEFAULT_MAX_IN_MEMORY,
            spill_dir: None,
        }
    }
}

/// What the pipeline did, returned after the worker drains and closes.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Final trace metadata (duration = total cycles of the run).
    pub meta: TraceMeta,
    /// Records pushed through the sorter into the sink (decoded records
    /// plus the synthetic closing state intervals).
    pub records: u64,
    /// Bytes of trace data flushed to external memory (with line padding).
    pub flushed_bytes: u64,
    /// Number of buffer flushes during the run.
    pub flush_count: usize,
    /// Chunks received over the channel.
    pub chunks: u64,
    /// Largest single chunk in bytes (bounded by the trace buffer size).
    pub peak_chunk_bytes: usize,
    /// Peak records resident in the sorter — the pipeline's actual RAM
    /// bound, `<=` [`PipelineConfig::max_in_memory_records`].
    pub peak_resident_records: usize,
    /// Sort runs spilled to disk.
    pub spilled_runs: usize,
}

/// Terminal failure of the background pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// A pipeline stage returned a typed error (I/O, ordering, corrupt run).
    Trace(TraceError),
    /// The worker thread panicked (e.g. on a corrupt trace stream).
    WorkerPanicked,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Trace(e) => write!(f, "trace pipeline failed: {e}"),
            PipelineError::WorkerPanicked => write!(f, "trace pipeline worker panicked"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Trace(e) => Some(e),
            PipelineError::WorkerPanicked => None,
        }
    }
}

impl From<TraceError> for PipelineError {
    fn from(e: TraceError) -> Self {
        PipelineError::Trace(e)
    }
}

enum Msg {
    Chunk(Flush, Vec<u8>),
    End {
        total_cycles: u64,
        flushed_bytes: u64,
        flush_count: usize,
    },
}

/// Sender side of the pipeline, owned by the profiling unit.
pub(crate) struct PipelineHandle {
    tx: Option<SyncSender<Msg>>,
    join: Option<JoinHandle<Result<StreamReport, TraceError>>>,
}

impl PipelineHandle {
    pub(crate) fn spawn(
        app_name: String,
        num_threads: u32,
        cfg: PipelineConfig,
        factory: SinkFactory,
    ) -> Self {
        let (tx, rx) = sync_channel(cfg.channel_capacity.max(1));
        let join = std::thread::Builder::new()
            .name("trace-pipeline".into())
            .spawn(move || worker(rx, app_name, num_threads, cfg, factory))
            .expect("spawn trace-pipeline thread");
        PipelineHandle {
            tx: Some(tx),
            join: Some(join),
        }
    }

    /// Ship one flushed chunk; blocks when `channel_capacity` chunks are
    /// already in flight (backpressure). A send to a dead worker is
    /// dropped — the worker's error surfaces at [`Self::finish`].
    pub(crate) fn send_chunk(&self, flush: Flush, bytes: Vec<u8>) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Msg::Chunk(flush, bytes));
        }
    }

    /// Signal end of run and wait for the worker to drain, merge and close
    /// the sink.
    pub(crate) fn finish(
        mut self,
        total_cycles: u64,
        flushed_bytes: u64,
        flush_count: usize,
    ) -> Result<StreamReport, PipelineError> {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::End {
                total_cycles,
                flushed_bytes,
                flush_count,
            });
        }
        match self.join.take().expect("pipeline joined twice").join() {
            Ok(result) => result.map_err(PipelineError::from),
            Err(_) => Err(PipelineError::WorkerPanicked),
        }
    }
}

impl Drop for PipelineHandle {
    fn drop(&mut self) {
        // Abandoned without finish(): close the channel so the worker exits,
        // then reap it (its error, if any, is intentionally discarded).
        self.tx.take();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Sink whose target is installed late — after the run, once the final
/// metadata exists. The sorter only pushes during its `close`, which happens
/// after installation.
struct LateSink {
    inner: Option<Box<dyn TraceSink + Send>>,
}

impl TraceSink for LateSink {
    fn push(&mut self, r: paraver::Record) -> Result<(), TraceError> {
        self.inner
            .as_mut()
            .expect("terminal sink installed before merge")
            .push(r)
    }

    fn close(&mut self) -> Result<(), TraceError> {
        match self.inner.as_mut() {
            Some(s) => s.close(),
            None => Ok(()),
        }
    }
}

fn worker(
    rx: Receiver<Msg>,
    app_name: String,
    num_threads: u32,
    cfg: PipelineConfig,
    factory: SinkFactory,
) -> Result<StreamReport, TraceError> {
    let mut decoder = Some(StreamDecoder::new(num_threads));
    let late = LateSink { inner: None };
    let cap = cfg.max_in_memory_records.max(1);
    let mut sorter = match cfg.spill_dir {
        Some(dir) => SpillSorter::with_spill_dir(late, cap, dir),
        None => SpillSorter::new(late, cap),
    };
    let mut first_err: Option<TraceError> = None;
    let mut chunks = 0u64;
    let mut peak_chunk_bytes = 0usize;

    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Chunk(_flush, bytes) => {
                // Keep draining after an error so the sender never blocks
                // on a full channel; the error is reported at End.
                if first_err.is_some() {
                    continue;
                }
                chunks += 1;
                peak_chunk_bytes = peak_chunk_bytes.max(bytes.len());
                let dec = decoder.as_mut().expect("decoder live until End");
                dec.feed(&bytes, &mut |r| {
                    if first_err.is_none() {
                        if let Err(e) = sorter.push(r) {
                            first_err = Some(e);
                        }
                    }
                });
            }
            Msg::End {
                total_cycles,
                flushed_bytes,
                flush_count,
            } => {
                if let Some(e) = first_err {
                    return Err(e);
                }
                let dec = decoder.take().expect("single End message");
                let mut close_err: Option<TraceError> = None;
                dec.finish(total_cycles, &mut |r| {
                    if close_err.is_none() {
                        if let Err(e) = sorter.push(r) {
                            close_err = Some(e);
                        }
                    }
                });
                if let Some(e) = close_err {
                    return Err(e);
                }
                let meta = TraceMeta::new(&app_name, total_cycles, num_threads);
                sorter.inner_mut().inner = Some(factory(&meta)?);
                sorter.close()?;
                return Ok(StreamReport {
                    meta,
                    records: sorter.total_records(),
                    flushed_bytes,
                    flush_count,
                    chunks,
                    peak_chunk_bytes,
                    peak_resident_records: sorter.peak_in_memory(),
                    spilled_runs: sorter.spilled_runs(),
                });
            }
        }
    }
    Err(TraceError::CorruptRun(
        "trace pipeline channel closed without an End message".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{CounterBank, CounterSet};
    use crate::recorder::StateRecorder;
    use fpga_sim::ThreadState;
    use paraver::{Record, VecSink};
    use std::sync::{Arc, Mutex};

    /// Sink that shares its collected records with the test thread.
    struct SharedSink(Arc<Mutex<Vec<Record>>>);

    impl TraceSink for SharedSink {
        fn push(&mut self, r: Record) -> Result<(), TraceError> {
            self.0.lock().unwrap().push(r);
            Ok(())
        }
    }

    #[test]
    fn pipeline_matches_materialized_decode() {
        // Build a stream, decode it materialized, then pump the same bytes
        // through the background pipeline and compare.
        let mut stream = Vec::new();
        let mut rec = StateRecorder::new(2);
        let mut bank = CounterBank::new(2, CounterSet::default());
        for i in 1..100u64 {
            let tid = (i % 2) as u32;
            let s = if i % 3 == 0 {
                ThreadState::Running
            } else {
                ThreadState::Spinning
            };
            if let Some(r) = rec.transition(i * 7, tid, s) {
                let r = r.to_vec();
                stream.extend_from_slice(&r);
            }
            bank.add_ops(tid, i, i, i);
            if let Some(r) = bank.sample(i * 7 + 3, tid) {
                stream.extend_from_slice(&r);
            }
        }
        let expect = crate::decode::decode_stream(&stream, 2, 10_000);

        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink_records = collected.clone();
        let handle = PipelineHandle::spawn(
            "t".into(),
            2,
            PipelineConfig {
                channel_capacity: 2,
                max_in_memory_records: 16, // force spilling
                spill_dir: None,
            },
            Box::new(move |_meta| Ok(Box::new(SharedSink(sink_records)) as Box<_>)),
        );
        for chunk in stream.chunks(64) {
            handle.send_chunk(
                Flush {
                    at_cycle: 0,
                    bytes: 64,
                },
                chunk.to_vec(),
            );
        }
        let report = handle.finish(10_000, 12_345, 7).unwrap();
        assert_eq!(report.flushed_bytes, 12_345);
        assert_eq!(report.flush_count, 7);
        assert!(report.peak_resident_records <= 16);
        assert!(report.spilled_runs > 0, "16-record cap must spill");
        assert_eq!(report.records as usize, expect.len());
        let got = collected.lock().unwrap();
        assert_eq!(*got, expect, "streamed records == materialized records");
    }

    #[test]
    fn abandoned_pipeline_reaps_worker() {
        let handle = PipelineHandle::spawn(
            "t".into(),
            1,
            PipelineConfig::default(),
            Box::new(|_| Ok(Box::new(VecSink::new()) as Box<_>)),
        );
        drop(handle); // must not hang or leak the thread
    }

    #[test]
    fn sink_factory_error_propagates() {
        let handle = PipelineHandle::spawn(
            "t".into(),
            1,
            PipelineConfig::default(),
            Box::new(|_| {
                Err(TraceError::Io(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    "no",
                )))
            }),
        );
        let err = handle.finish(100, 0, 0).unwrap_err();
        assert!(matches!(err, PipelineError::Trace(TraceError::Io(_))));
    }
}
