//! Bottleneck diagnosis from traces — the analysis loop of the paper's §V-C
//! case study, automated.
//!
//! §I motivates the whole effort with "identifying bottlenecks (e.g.
//! memory-, compute- or latency-boundness)"; §V-C then walks exactly that
//! loop by eye: see spinning → remove the critical section; see low
//! bandwidth with full stalls → vectorize; see bandwidth spent re-reading →
//! block; see alternating phases → double-buffer. This module encodes those
//! readings of a trace so tools (and tests) can make the same call, and is
//! the natural seed for the paper's future-work item of "profile-guided
//! optimization in the HLS compiler".

use crate::unit::TraceData;
use fpga_sim::stats::RunStats;
use fpga_sim::{SimConfig, SimError};
use nymble_hls::probe::ProbePlan;
use nymble_hls::region::{RegionKind, RegionTree};
use nymble_lint::{Code, LintReport, PerfParams, PredMetric};
use paraver::analysis::{event_series, StateProfile};
use paraver::{events, states};
use std::collections::HashMap;

/// The dominant performance limiter of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// Significant time spinning on / executing inside critical sections.
    Synchronization,
    /// Stall-dominated with low achieved bandwidth: each access pays the
    /// memory round trip (pointer-chase / strided patterns).
    MemoryLatency,
    /// Stall-dominated with high achieved bandwidth: the interface is the
    /// limit; wider or fewer accesses are needed.
    MemoryBandwidth,
    /// Little stalling — the datapath itself is the limiter.
    Compute,
    /// The host dominates: threads idle waiting to be started (the π study's
    /// launch-overhead regime).
    HostOverhead,
    /// Pronounced alternating transfer/compute phases: compute waits for
    /// block loads (the Fig. 8 pattern double-buffering removes).
    PhasedTransfers,
}

/// A quantified diagnosis.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    pub bottleneck: Bottleneck,
    /// Fraction of aggregate thread time spent idle (not yet started or
    /// finished early).
    pub idle_frac: f64,
    /// Fraction spent spinning plus inside critical sections.
    pub sync_frac: f64,
    /// Stall cycles per thread-cycle of runtime.
    pub stall_frac: f64,
    /// Achieved fraction of the DRAM interface's peak bandwidth.
    pub bandwidth_frac: f64,
    /// Phase alternation score in [0, 1]: fraction of sampling windows in
    /// which reads and flops do *not* co-occur (1 = fully phased, 0 = fully
    /// overlapped).
    pub phase_score: f64,
    /// Human-readable summary with the suggested next optimization.
    pub advice: String,
}

/// Tunable decision thresholds.
#[derive(Clone, Debug)]
pub struct DiagnoseConfig {
    pub sync_threshold: f64,
    pub idle_threshold: f64,
    pub stall_threshold: f64,
    pub bandwidth_high: f64,
    pub phase_threshold: f64,
    /// Number of analysis windows for the phase score.
    pub windows: u64,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        DiagnoseConfig {
            sync_threshold: 0.02,
            idle_threshold: 0.5,
            stall_threshold: 0.25,
            bandwidth_high: 0.5,
            phase_threshold: 0.35,
            windows: 64,
        }
    }
}

/// Classify a profiled run.
pub fn diagnose(
    trace: &TraceData,
    stats: &RunStats,
    sim: &SimConfig,
    cfg: &DiagnoseConfig,
) -> Diagnosis {
    let threads = trace.meta.num_threads.max(1);
    let duration = trace.meta.duration.max(1);
    let prof = StateProfile::compute(&trace.records, threads);

    let idle_frac = prof.fraction(states::IDLE);
    let sync_frac = prof.fraction(states::SPINNING) + prof.fraction(states::CRITICAL);
    let thread_cycles = (duration as f64) * threads as f64;
    let stall_frac = stats.total_stalls() as f64 / thread_cycles;
    let peak_bytes = sim.dram_bytes_per_cycle as f64 * duration as f64;
    let bandwidth_frac = stats.total(|t| t.bytes_read + t.bytes_written) as f64 / peak_bytes;

    // Phase score: in how many windows is exactly one of {transfer, compute}
    // active? Alternating load/compute phases (Fig. 8) score high; fully
    // overlapped execution (Fig. 9) scores low.
    let bin = duration.div_ceil(cfg.windows).max(1);
    let reads = event_series(&trace.records, events::BYTES_READ, bin, duration);
    let flops = event_series(&trace.records, events::FLOPS, bin, duration);
    let read_peak = reads.peak().max(1) as f64;
    let flop_peak = flops.peak().max(1) as f64;
    let mut active = 0u64;
    let mut exclusive = 0u64;
    for (r, f) in reads.bins.iter().zip(&flops.bins) {
        let r_on = *r as f64 > 0.15 * read_peak;
        let f_on = *f as f64 > 0.15 * flop_peak;
        if r_on || f_on {
            active += 1;
            if r_on != f_on {
                exclusive += 1;
            }
        }
    }
    let phase_score = if active == 0 {
        0.0
    } else {
        exclusive as f64 / active as f64
    };

    let bottleneck = if idle_frac > cfg.idle_threshold {
        Bottleneck::HostOverhead
    } else if sync_frac > cfg.sync_threshold {
        Bottleneck::Synchronization
    } else if phase_score > cfg.phase_threshold && stall_frac > 0.02 {
        Bottleneck::PhasedTransfers
    } else if stall_frac > cfg.stall_threshold {
        if bandwidth_frac > cfg.bandwidth_high {
            Bottleneck::MemoryBandwidth
        } else {
            Bottleneck::MemoryLatency
        }
    } else {
        Bottleneck::Compute
    };

    let advice = match bottleneck {
        Bottleneck::Synchronization => format!(
            "{:.1}% of thread time is spent in or spinning on critical sections; \
             restructure the work so threads write disjoint data (the paper's \
             'No Critical Sections' step) — `nymble-lint` codes NL001 \
             (cross-thread write overlap) and NL003 (unsynchronized \
             read-modify-write) pinpoint the accesses that force the lock",
            sync_frac * 100.0
        ),
        Bottleneck::MemoryLatency => format!(
            "stalls consume {:.1}% of thread cycles while only {:.1}% of peak \
             bandwidth is used: accesses pay full memory latency — vectorize \
             loads or stage data in local memory (the paper's 'Partial \
             Vectorization' / 'Blocked' steps)",
            stall_frac * 100.0,
            bandwidth_frac * 100.0
        ),
        Bottleneck::MemoryBandwidth => format!(
            "the memory interface is {:.1}% utilised and still stalling: reduce \
             total traffic by reusing data from local memory (the paper's \
             'Blocked' step)",
            bandwidth_frac * 100.0
        ),
        Bottleneck::Compute => "few stalls and no synchronization pressure: the datapath \
             itself limits throughput — increase unrolling or instantiate more \
             compute"
            .to_string(),
        Bottleneck::HostOverhead => format!(
            "threads are idle {:.1}% of the time: the host's sequential thread \
             starts dominate — increase the work per launch (the paper's π \
             study) or improve the software interface",
            idle_frac * 100.0
        ),
        Bottleneck::PhasedTransfers => format!(
            "transfers and compute alternate (phase score {phase_score:.2}): \
             prefetch the next block while computing (the paper's \
             'double-buffering' step)"
        ),
    };

    Diagnosis {
        bottleneck,
        idle_frac,
        sync_frac,
        stall_frac,
        bandwidth_frac,
        phase_score,
        advice,
    }
}

/// Static-analysis cross-reference for a run that failed *before* producing
/// a usable trace. A simulated deadlock — threads parked at a barrier that
/// can never fill — is exactly the behavior `nymble-lint` code NL002
/// (barrier under thread-dependent control flow) predicts statically, so
/// point the user at the analyzer instead of leaving them with a raw cycle
/// count.
pub fn sim_error_hint(e: &SimError) -> Option<String> {
    match e {
        SimError::Deadlock { waiting, .. } => Some(format!(
            "{} thread(s) deadlocked at a synchronization point: this is the \
             dynamic signature of `nymble-lint` code NL002 (a `barrier` \
             reached under thread-dependent control flow) — run the kernel \
             through `nymble-lint` to locate the divergent branch",
            waiting.len()
        )),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Predicted vs. observed: confronting static NP findings with the trace
// ---------------------------------------------------------------------------

/// Outcome of checking one static performance prediction against a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The measured trace exhibits the predicted symptom at (or beyond) the
    /// predicted magnitude.
    Confirmed,
    /// The symptom did not materialize — the static model over-approximated
    /// (e.g. the scheduler broke the recurrence, or the access pattern hit
    /// the line buffers).
    NotObserved,
    /// The run has a bottleneck the static pass has no finding for — a gap
    /// in `nymble-lint`'s coverage worth a bug report.
    UnpredictedHotspot,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Confirmed => "Confirmed",
            Verdict::NotObserved => "NotObserved",
            Verdict::UnpredictedHotspot => "UnpredictedHotspot",
        }
    }
}

/// One line of the predicted-vs-observed section.
#[derive(Clone, Debug)]
pub struct PredictionOutcome {
    /// The static diagnostic being confronted; `None` for an observed
    /// hotspot no NP code predicted.
    pub code: Option<Code>,
    pub verdict: Verdict,
    /// The static model's quantitative prediction, where one exists.
    pub predicted: Option<f64>,
    /// The corresponding quantity measured from the trace / run stats.
    pub observed: f64,
    /// Human-readable rendering of the comparison.
    pub detail: String,
}

/// Build the static model's parameter set from the simulator configuration,
/// so predictions and measurements share one machine description. The
/// defaults of both sides already agree ([`PerfParams::default`] mirrors
/// [`SimConfig::default`]); this keeps them aligned under overrides like
/// `SimConfig::with_fast_launch`.
pub fn perf_params_from_sim(sim: &SimConfig) -> PerfParams {
    PerfParams {
        dram_latency: sim.dram_latency,
        dram_bytes_per_cycle: u64::from(sim.dram_bytes_per_cycle),
        dram_line_bytes: u64::from(sim.dram_line_bytes),
        launch_interval: sim.launch_interval,
        sem_acquire_latency: sim.sem_acquire_latency,
        sem_release_latency: sim.sem_release_latency,
        barrier_latency: sim.barrier_latency,
        seq_issue_width: u64::from(sim.seq_issue_width),
        stmt_base_cost: sim.stmt_base_cost,
        burst_issue_cost: sim.burst_issue_cost,
        assumed_load_latency: sim.assumed_load_latency,
        dma_setup: sim.dma_setup,
        line_buffers: sim.line_buffers,
    }
}

/// Confront each static NP finding with the measured run and flag measured
/// bottlenecks the static pass missed.
///
/// Confirmation thresholds are deliberately loose (the static model is an
/// approximation, not a re-implementation of the event core): a prediction
/// counts as confirmed when the observation reaches most of the predicted
/// magnitude, not when it matches exactly.
pub fn confront(
    report: &LintReport,
    trace: &TraceData,
    stats: &RunStats,
    diagnosis: &Diagnosis,
) -> Vec<PredictionOutcome> {
    let duration = trace.meta.duration.max(1) as f64;
    let dram_bytes = stats.channel_bytes.max(stats.total_bytes()) as f64;
    let serial_cycles = stats.total(|t| t.critical_cycles) as f64;
    // Imbalance shows up two ways: unequal thread spans (no trailing
    // barrier — the fast threads simply finish early) or equal spans with
    // unequal retired work (a trailing barrier parks the fast threads
    // until the slowest arrives). Take whichever ratio is larger.
    let ratio_of = |vals: &[u64]| match (vals.iter().max(), vals.iter().min()) {
        (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
        _ => 1.0,
    };
    let spans: Vec<u64> = stats
        .per_thread
        .iter()
        .map(|t| t.end_cycle.saturating_sub(t.start_cycle))
        .collect();
    let iters: Vec<u64> = stats.per_thread.iter().map(|t| t.iterations).collect();
    let observed_ratio = ratio_of(&spans).max(ratio_of(&iters));

    let mut out = Vec::new();
    for d in &report.diagnostics {
        if !d.code.is_perf() {
            continue;
        }
        let Some(pred) = &d.prediction else { continue };
        // (observed value, fraction of the prediction that must materialize)
        let (observed, floor) = match pred.metric {
            PredMetric::TotalCycles => (duration, 0.75 * pred.value),
            PredMetric::DramBytes => (dram_bytes, 0.75 * pred.value),
            // The wasted transfer is a *component* of total traffic; it
            // confirms when the interface moved at least that much.
            PredMetric::WastedDmaBytes => (dram_bytes, 0.75 * pred.value),
            PredMetric::SerialCycles => (serial_cycles, 0.5 * pred.value),
            // Ratios: confirmed when at least half the predicted *excess*
            // over the balanced 1.0 shows up.
            PredMetric::ImbalanceRatio => (observed_ratio, 1.0 + 0.5 * (pred.value - 1.0)),
        };
        let verdict = if observed >= floor {
            Verdict::Confirmed
        } else {
            Verdict::NotObserved
        };
        out.push(PredictionOutcome {
            code: Some(d.code),
            verdict,
            predicted: Some(pred.value),
            observed,
            detail: format!(
                "{}: predicted {} {:.0}, observed {:.2} -> {}",
                d.code.as_str(),
                pred.metric.as_str(),
                pred.value,
                observed,
                verdict.as_str()
            ),
        });
    }

    // Coverage check in the other direction: a measured bottleneck with no
    // static finding that explains it.
    let has = |c: Code| report.diagnostics.iter().any(|d| d.code == c);
    let sync_explained = has(Code::NP004);
    let memory_explained = has(Code::NP002) || has(Code::NP003) || has(Code::NP001);
    match diagnosis.bottleneck {
        Bottleneck::Synchronization if !sync_explained => out.push(PredictionOutcome {
            code: None,
            verdict: Verdict::UnpredictedHotspot,
            predicted: None,
            observed: diagnosis.sync_frac,
            detail: format!(
                "UnpredictedHotspot: {:.1}% of thread time is synchronization \
                 but no NP004 finding predicted it",
                diagnosis.sync_frac * 100.0
            ),
        }),
        Bottleneck::MemoryLatency | Bottleneck::MemoryBandwidth if !memory_explained => {
            out.push(PredictionOutcome {
                code: None,
                verdict: Verdict::UnpredictedHotspot,
                predicted: None,
                observed: diagnosis.stall_frac,
                detail: format!(
                    "UnpredictedHotspot: memory-bound run (stall {:.1}%, bandwidth \
                     {:.1}%) with no NP001/NP002/NP003 finding",
                    diagnosis.stall_frac * 100.0,
                    diagnosis.bandwidth_frac * 100.0
                ),
            })
        }
        _ => {}
    }
    out
}

// ---------------------------------------------------------------------------
// Region attribution: from thread timelines to source regions
// ---------------------------------------------------------------------------

/// Wall-clock cycles attributed to one instrumented source region.
#[derive(Clone, Debug)]
pub struct RegionAttribution {
    /// Region id in the compiled design's region tree.
    pub id: u16,
    /// Parent region id (`None` for the kernel root).
    pub parent: Option<u16>,
    /// Slash-separated source path of the region.
    pub label: String,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// IR construct kind.
    pub kind: RegionKind,
    /// Attributed wall-clock cycles.
    pub cycles: u64,
    /// True when the figure comes from *observed* state time (critical
    /// sections, measured via the CRITICAL state) rather than the static
    /// profit split.
    pub observed: bool,
}

/// Attribute the run's wall-clock cycles to the plan's source regions, so
/// stalls land on *regions* instead of just threads.
///
/// The kernel root gets the whole run. Each child receives its parent's
/// cycles scaled by the static profit ratio (the analytic mirror priced
/// every region when it built the tree) — telescoping, so a region's figure
/// never exceeds its parent's. Critical regions are the exception: their
/// time is directly observable in the trace (the CRITICAL state), so the
/// measured figure overrides the static split for the region runtime
/// critical events map to.
pub fn attribute_regions(
    tree: &RegionTree,
    plan: &ProbePlan,
    trace: &TraceData,
) -> Vec<RegionAttribution> {
    let duration = trace.meta.duration.max(1);
    let threads = trace.meta.num_threads.max(1);
    let prof = StateProfile::compute(&trace.records, threads);
    // Average per-thread wall time inside critical sections; maps to the
    // plan's highest-ranked critical region (the single hardware semaphore
    // makes every runtime critical transition attribute there — see the
    // unit's RegionEmitter).
    let observed_critical = (prof.fraction(states::CRITICAL) * duration as f64) as u64;
    let runtime_critical = plan
        .regions
        .iter()
        .filter(|r| r.kind == RegionKind::Critical)
        .max_by_key(|r| r.score)
        .map(|r| r.id);

    let weight = |id: u16| {
        if tree.analytic {
            tree.region(id).profit.cycles
        } else {
            tree.region(id).score
        }
    };

    let mut cycles_of: HashMap<u16, u64> = HashMap::new();
    let mut was_observed: HashMap<u16, bool> = HashMap::new();
    for r in &plan.regions {
        if r.parent.is_none() {
            cycles_of.insert(r.id, duration);
        }
    }
    // plan.regions is pre-order, so each parent's figure is settled before
    // its children are visited. Observed children (critical sections) are
    // charged first; the remaining siblings split what is left of the
    // parent by their static weight ratio, keeping the sum of any region's
    // children at or below the region itself.
    for p in &plan.regions {
        let Some(&pc) = cycles_of.get(&p.id) else {
            continue;
        };
        let kids: Vec<_> = plan
            .regions
            .iter()
            .filter(|r| r.parent == Some(p.id))
            .collect();
        let mut remaining = pc;
        for k in &kids {
            if runtime_critical == Some(k.id) && observed_critical > 0 {
                let c = observed_critical.min(remaining);
                cycles_of.insert(k.id, c);
                was_observed.insert(k.id, true);
                remaining -= c;
            }
        }
        let pw = weight(p.id);
        for k in &kids {
            if was_observed.contains_key(&k.id) {
                continue;
            }
            let c = if pw == 0 {
                0
            } else {
                (((remaining as u128) * (weight(k.id) as u128)) / (pw as u128)) as u64
            }
            .min(remaining);
            cycles_of.insert(k.id, c);
        }
    }
    plan.regions
        .iter()
        .map(|r| RegionAttribution {
            id: r.id,
            parent: r.parent,
            label: r.label.clone(),
            depth: r.depth,
            kind: r.kind,
            cycles: cycles_of.get(&r.id).copied().unwrap_or(0),
            observed: was_observed.get(&r.id).copied().unwrap_or(false),
        })
        .collect()
}

/// The most expensive *source* region of a run: the non-root region with
/// the most attributed cycles (deepest wins ties — it is the most specific
/// answer). Falls back to the root when the plan instrumented nothing else.
pub fn hottest_region(att: &[RegionAttribution]) -> Option<&RegionAttribution> {
    att.iter()
        .filter(|r| r.depth > 0)
        .max_by_key(|r| (r.cycles, r.depth))
        .or_else(|| att.first())
}

/// Fraction of the root's cycles that the root's direct children account
/// for — the reconciliation figure: ~1.0 means the region split explains
/// the whole-kernel cycle count.
pub fn attribution_coverage(att: &[RegionAttribution]) -> f64 {
    let Some(root) = att.iter().find(|r| r.parent.is_none()) else {
        return 0.0;
    };
    let top: u64 = att
        .iter()
        .filter(|r| r.parent == Some(root.id))
        .map(|r| r.cycles)
        .sum();
    top as f64 / root.cycles.max(1) as f64
}

/// Render the region attribution as an indented table for terminal reports.
pub fn render_region_attribution(att: &[RegionAttribution]) -> String {
    let mut s = String::new();
    for r in att {
        s.push_str(&format!(
            "  {:>12} cyc  {}{} [{}]{}\n",
            r.cycles,
            "  ".repeat(r.depth as usize),
            r.label,
            r.kind.name(),
            if r.observed { " (observed)" } else { "" }
        ));
    }
    s
}

/// Render a predicted-vs-observed section for terminal reports.
pub fn render_confrontation(outcomes: &[PredictionOutcome]) -> String {
    if outcomes.is_empty() {
        return "  (no static performance findings to confront)\n".to_string();
    }
    let mut s = String::new();
    for o in outcomes {
        s.push_str("  ");
        s.push_str(&o.detail);
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{ProfilingConfig, ProfilingUnit};
    use fpga_sim::stats::ThreadStats;
    use fpga_sim::{Snoop, ThreadState};

    fn mk_trace(f: impl FnOnce(&mut ProfilingUnit)) -> TraceData {
        let mut u = ProfilingUnit::new(
            "t",
            2,
            ProfilingConfig {
                sampling_period: 100,
                ..Default::default()
            },
        );
        f(&mut u);
        u.finish()
    }

    fn stats_with(stall: u64, bytes: u64) -> RunStats {
        RunStats {
            per_thread: vec![
                ThreadStats {
                    stall_cycles: stall,
                    bytes_read: bytes,
                    ..Default::default()
                },
                ThreadStats::default(),
            ],
            ..Default::default()
        }
    }

    #[test]
    fn spinning_trace_flags_synchronization() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.state_change(0, 1, ThreadState::Running);
            u.state_change(100, 0, ThreadState::Spinning);
            u.state_change(600, 0, ThreadState::Critical);
            u.state_change(800, 0, ThreadState::Running);
            u.run_end(1000);
        });
        let d = diagnose(
            &trace,
            &stats_with(0, 0),
            &SimConfig::default(),
            &DiagnoseConfig::default(),
        );
        assert_eq!(d.bottleneck, Bottleneck::Synchronization);
        assert!(d.sync_frac > 0.3, "{d:?}");
        assert!(d.advice.contains("critical"));
        // The advice cross-references the static analyzer's codes so the
        // user can jump from the trace symptom to the racing statements.
        assert!(d.advice.contains("NL001"), "{}", d.advice);
        assert!(d.advice.contains("NL003"), "{}", d.advice);
    }

    #[test]
    fn deadlock_hint_points_at_nl002() {
        use fpga_sim::{BlockedReason, BlockedThread};
        let e = SimError::Deadlock {
            waiting: vec![BlockedThread {
                thread: 0,
                reason: BlockedReason::AtBarrier {
                    arrived: 1,
                    expected: 2,
                },
                at_cycle: 42,
            }],
        };
        let hint = sim_error_hint(&e).expect("deadlocks have a lint hint");
        assert!(hint.contains("NL002"), "{hint}");
        assert!(hint.contains("nymble-lint"), "{hint}");
        assert_eq!(sim_error_hint(&SimError::InvalidConfig("x".into())), None);
    }

    #[test]
    fn idle_trace_flags_host_overhead() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.state_change(100, 0, ThreadState::Idle);
            // Thread 1 never starts until very late.
            u.state_change(900, 1, ThreadState::Running);
            u.run_end(1000);
        });
        let d = diagnose(
            &trace,
            &stats_with(0, 0),
            &SimConfig::default(),
            &DiagnoseConfig::default(),
        );
        assert_eq!(d.bottleneck, Bottleneck::HostOverhead);
    }

    #[test]
    fn stalls_with_low_bandwidth_flag_latency() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.state_change(0, 1, ThreadState::Running);
            for t in 0..10 {
                u.ops(t * 100, 0, 1, 1, 0);
                u.mem_read(t * 100, 0, 4);
            }
            u.run_end(1000);
        });
        let d = diagnose(
            &trace,
            &stats_with(600, 40),
            &SimConfig::default(),
            &DiagnoseConfig::default(),
        );
        assert_eq!(d.bottleneck, Bottleneck::MemoryLatency);
        assert!(d.advice.contains("Vectorization") || d.advice.contains("local memory"));
    }

    #[test]
    fn clean_trace_flags_compute() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.state_change(0, 1, ThreadState::Running);
            for t in 0..10 {
                u.ops(t * 100, 0, 10, 10, 0);
                u.mem_read(t * 100, 0, 64);
            }
            u.run_end(1000);
        });
        let d = diagnose(
            &trace,
            &stats_with(0, 640),
            &SimConfig::default(),
            &DiagnoseConfig::default(),
        );
        assert_eq!(d.bottleneck, Bottleneck::Compute);
    }

    fn report_with(code: Code, metric: PredMetric, value: f64) -> LintReport {
        LintReport {
            kernel: "t".into(),
            diagnostics: vec![
                nymble_lint::Diagnostic::new(code, "m", vec![]).with_prediction(metric, value)
            ],
        }
    }

    fn empty_report() -> LintReport {
        LintReport {
            kernel: "t".into(),
            diagnostics: vec![],
        }
    }

    #[test]
    fn sim_params_translate_to_the_static_model() {
        assert_eq!(
            perf_params_from_sim(&SimConfig::default()),
            nymble_lint::PerfParams::default(),
            "the static model's defaults must mirror the simulator's"
        );
        let fast = SimConfig::default().with_fast_launch();
        assert_eq!(
            perf_params_from_sim(&fast).launch_interval,
            fast.launch_interval
        );
    }

    #[test]
    fn predictions_confirm_against_the_observed_magnitude() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.run_end(1000);
        });
        let stats = stats_with(0, 0);
        let d = diagnose(
            &trace,
            &stats,
            &SimConfig::default(),
            &DiagnoseConfig::default(),
        );
        // Observed duration 1000 covers >= 75% of a 1200-cycle prediction…
        let r = report_with(Code::NP001, PredMetric::TotalCycles, 1200.0);
        let out = confront(&r, &trace, &stats, &d);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Some(Code::NP001));
        assert_eq!(out[0].verdict, Verdict::Confirmed);
        assert!(out[0].detail.contains("Confirmed"), "{}", out[0].detail);
        // …but not of a 2000-cycle one: the model over-predicted.
        let r = report_with(Code::NP001, PredMetric::TotalCycles, 2000.0);
        let out = confront(&r, &trace, &stats, &d);
        assert_eq!(out[0].verdict, Verdict::NotObserved);
    }

    #[test]
    fn imbalance_confirms_on_half_the_predicted_excess() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.run_end(1000);
        });
        let mk = |spans: [u64; 2]| RunStats {
            per_thread: spans
                .iter()
                .map(|&e| ThreadStats {
                    start_cycle: 0,
                    end_cycle: e,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        };
        let d = diagnose(
            &trace,
            &mk([400, 200]),
            &SimConfig::default(),
            &DiagnoseConfig::default(),
        );
        // Observed ratio 2.0; predicted 2.4 needs only 1.7 to confirm.
        let r = report_with(Code::NP005, PredMetric::ImbalanceRatio, 2.4);
        let out = confront(&r, &trace, &mk([400, 200]), &d);
        assert_eq!(out[0].verdict, Verdict::Confirmed);
        // A balanced run refutes the same prediction.
        let out = confront(&r, &trace, &mk([400, 400]), &d);
        assert_eq!(out[0].verdict, Verdict::NotObserved);
    }

    #[test]
    fn spinning_run_without_np004_is_an_unpredicted_hotspot() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.state_change(0, 1, ThreadState::Running);
            u.state_change(100, 0, ThreadState::Spinning);
            u.state_change(600, 0, ThreadState::Critical);
            u.state_change(800, 0, ThreadState::Running);
            u.run_end(1000);
        });
        let stats = stats_with(0, 0);
        let d = diagnose(
            &trace,
            &stats,
            &SimConfig::default(),
            &DiagnoseConfig::default(),
        );
        assert_eq!(d.bottleneck, Bottleneck::Synchronization);
        // No static finding explains the spinning: coverage gap, flagged.
        let out = confront(&empty_report(), &trace, &stats, &d);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, None);
        assert_eq!(out[0].verdict, Verdict::UnpredictedHotspot);
        assert!(out[0].detail.contains("NP004"), "{}", out[0].detail);
        // With an NP004 prediction on file the hotspot is accounted for.
        let r = report_with(Code::NP004, PredMetric::SerialCycles, 500.0);
        let out = confront(&r, &trace, &stats, &d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, Some(Code::NP004));
        assert!(render_confrontation(&out).contains("NP004"));
    }

    /// A contended-reduction stall fixture: per-thread loop work followed
    /// by a critical section, compiled under `--profile=auto`.
    fn stall_fixture() -> (nymble_hls::RegionTree, std::sync::Arc<ProbePlan>) {
        use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};
        let mut kb = KernelBuilder::new("reduce", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
        let acc = kb.var("acc", Type::F32);
        let n = kb.c_i64(64);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(acc);
            let s = kb.add(cur, v);
            kb.set(acc, s);
        });
        kb.critical(|kb| {
            let zero = kb.c_i64(0);
            let cur = kb.load(c, zero, Type::F32);
            let mine = kb.get(acc);
            let s = kb.add(cur, mine);
            kb.store(c, zero, s);
        });
        let k = kb.finish();
        let acc = nymble_hls::compile(
            &k,
            &nymble_hls::HlsConfig {
                probe: nymble_hls::ProbeMode::auto(),
                ..Default::default()
            },
        );
        (acc.regions.clone(), acc.probe_plan.unwrap())
    }

    #[test]
    fn attribution_names_a_source_region_for_a_stalling_run() {
        let (tree, plan) = stall_fixture();
        // Thread 0 spends most of the run inside the critical section.
        let trace = {
            let mut u = ProfilingUnit::new(
                "reduce",
                2,
                ProfilingConfig {
                    sampling_period: 100,
                    ..Default::default()
                }
                .with_plan(plan.clone()),
            );
            u.state_change(0, 0, ThreadState::Running);
            u.state_change(0, 1, ThreadState::Running);
            u.state_change(100, 0, ThreadState::Critical);
            u.state_change(800, 0, ThreadState::Running);
            u.run_end(1000);
            u.finish()
        };
        let att = attribute_regions(&tree, &plan, &trace);
        assert_eq!(att.len(), plan.regions.len());
        // Root gets the whole run; children never exceed their parent.
        assert_eq!(att[0].cycles, 1000);
        for r in &att {
            if let Some(p) = r.parent {
                let parent = att.iter().find(|a| a.id == p).unwrap();
                assert!(r.cycles <= parent.cycles, "{r:?} > parent");
            }
        }
        // The critical region's figure is the *observed* critical time:
        // 700 thread-cycles over 2 threads = 350 wall cycles.
        let crit = att.iter().find(|r| r.kind == RegionKind::Critical).unwrap();
        assert!(crit.observed);
        assert_eq!(crit.cycles, 350);
        // The hottest region names a source construct, not a thread.
        let hot = hottest_region(&att).unwrap();
        assert!(hot.depth > 0);
        assert!(
            hot.label.contains('/'),
            "names a source path, got {}",
            hot.label
        );
        let rendered = render_region_attribution(&att);
        assert!(rendered.contains("critical#0"), "{rendered}");
        // Direct children of the root explain most of the run.
        let cov = attribution_coverage(&att);
        assert!(cov > 0.5 && cov <= 1.0 + 1e-9, "{cov}");
    }

    #[test]
    fn alternating_phases_flag_phased_transfers() {
        let trace = mk_trace(|u| {
            u.state_change(0, 0, ThreadState::Running);
            u.state_change(0, 1, ThreadState::Running);
            // Strict alternation: read window, then compute window.
            for w in 0..10u64 {
                let t = w * 100;
                if w % 2 == 0 {
                    u.mem_read(t + 10, 0, 4096);
                } else {
                    u.ops(t + 10, 0, 0, 1000, 0);
                }
            }
            u.run_end(1000);
        });
        let d = diagnose(
            &trace,
            &stats_with(100, 20_480),
            &SimConfig::default(),
            &DiagnoseConfig {
                windows: 10,
                ..Default::default()
            },
        );
        assert_eq!(d.bottleneck, Bottleneck::PhasedTransfers, "{d:?}");
        assert!(d.phase_score > 0.8, "{}", d.phase_score);
    }
}
