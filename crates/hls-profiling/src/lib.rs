//! # hls-profiling — the in-fabric profiling unit (the paper's contribution)
//!
//! Implements §IV of the reproduced paper: a profiling unit embedded in the
//! generated accelerator that
//!
//! * tracks each hardware thread's **state** (Idle/Running/Spinning/Critical,
//!   Fig. 2) in a 2-bit register and, whenever any thread changes state,
//!   appends a packed record of *all* thread states plus the 32-bit clock to
//!   a trace buffer (record width `2·N + 32` bits, §IV-B.1),
//! * aggregates **events** through per-source performance-counter modules
//!   (value + valid inputs, §IV-B.2): pipeline stalls, integer and
//!   floating-point operation counts, and read/write request bytes observed
//!   at the central Avalon interface, sampled every user-adjustable period,
//! * stores records into a 512-bit-wide **trace buffer** that flushes to
//!   external memory when nearly full (§IV-B),
//! * **decodes** the flushed byte stream back into Paraver records and writes
//!   the `.prv`/`.pcf`/`.row` bundle ([`decode`]),
//! * prices its own hardware in the analytical fit model ([`overhead`]),
//!   regenerating the §V-B area/fmax overhead numbers.
//!
//! The unit attaches to the simulator through [`fpga_sim::Snoop`] — the same
//! signals the real hardware taps from the datapath control bus.

pub mod buffer;
pub mod counters;
pub mod decode;
pub mod diagnose;
pub mod overhead;
pub mod pipeline;
pub mod recorder;
pub mod unit;

pub use diagnose::{
    attribute_regions, confront, hottest_region, perf_params_from_sim, PredictionOutcome,
    RegionAttribution, Verdict,
};
pub use pipeline::{PipelineConfig, PipelineError, SinkFactory, StreamReport};
pub use unit::{ProfilingConfig, ProfilingConfigError, ProfilingUnit, TraceData};
