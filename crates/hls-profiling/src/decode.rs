//! Decoding the flushed trace-buffer stream into Paraver records.
//!
//! "[The performance counters are] periodically stored to external memory to
//! avoid overflow of the counters. There they can later be accessed from the
//! host for analysis" (§IV-B). This module is that host-side analysis step:
//! it walks the byte stream the buffer flushed to (simulated) DRAM and
//! reconstructs
//!
//! * per-thread **state intervals** from the packed all-thread state
//!   snapshots (pairing consecutive snapshots per thread),
//! * **event records** from the sampled counter aggregates,
//! * full 64-bit times from the hardware's 32-bit cycle counter, by
//!   unwrapping at each backwards jump (records are buffer-ordered, i.e.
//!   nearly time-ordered).
//!
//! [`StreamDecoder`] is the incremental core: it accepts the stream chunk by
//! chunk (one flush at a time in the streaming pipeline) and emits records
//! as soon as they complete, so decoding overlaps the simulation and nothing
//! larger than one flush is ever resident. [`decode_stream`] is the
//! one-shot materialized wrapper over it.

use crate::counters::{unpack_event_record, EVENT_RECORD_BYTES};
use crate::recorder::{
    state_record_bytes, unpack_region_record, unpack_state_record, REGION_RECORD_BYTES, TAG_EVENT,
    TAG_REGION, TAG_STATE,
};
use fpga_sim::ThreadState;
use paraver::model::Record;

/// Reconstructs 64-bit cycle counts from truncated 32-bit stamps.
struct Unwrapper {
    epoch: u64,
    last: u32,
}

impl Unwrapper {
    fn new() -> Self {
        Unwrapper { epoch: 0, last: 0 }
    }

    fn full(&mut self, lo: u32) -> u64 {
        // A large backwards jump means the 32-bit counter wrapped.
        if lo < self.last && self.last - lo > u32::MAX / 2 {
            self.epoch += 1;
        }
        self.last = lo;
        (self.epoch << 32) | lo as u64
    }
}

/// Incremental decoder of the trace-buffer byte stream.
///
/// Feed it flushed chunks in flush order; it emits each [`Record`] the
/// moment its bytes are complete. A record that happens to straddle a chunk
/// boundary is carried over (at most one record's worth of bytes is ever
/// buffered). [`Self::finish`] closes the per-thread open state intervals
/// at end of run, exactly like the materialized decode.
pub struct StreamDecoder {
    num_threads: u32,
    srec_len: usize,
    unwrap: Unwrapper,
    /// Per-thread open interval: (state, since).
    open: Vec<(ThreadState, u64)>,
    /// Carry-over bytes of a record split across chunks.
    pending: Vec<u8>,
    records_decoded: u64,
}

impl StreamDecoder {
    pub fn new(num_threads: u32) -> Self {
        StreamDecoder {
            num_threads,
            srec_len: state_record_bytes(num_threads),
            unwrap: Unwrapper::new(),
            open: vec![(ThreadState::Idle, 0); num_threads as usize],
            pending: Vec::new(),
            records_decoded: 0,
        }
    }

    /// Records emitted so far (not counting the closing intervals).
    pub fn records_decoded(&self) -> u64 {
        self.records_decoded
    }

    /// Bytes carried over awaiting the rest of a split record.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// Decode one chunk, emitting every record it completes.
    pub fn feed(&mut self, chunk: &[u8], emit: &mut dyn FnMut(Record)) {
        self.pending.extend_from_slice(chunk);
        let mut pos = 0usize;
        while pos < self.pending.len() {
            match self.pending[pos] {
                TAG_STATE => {
                    if pos + self.srec_len > self.pending.len() {
                        break; // incomplete: wait for the next chunk
                    }
                    let (lo, states) = unpack_state_record(
                        &self.pending[pos + 1..pos + self.srec_len],
                        self.num_threads,
                    );
                    let t = self.unwrap.full(lo);
                    for (tid, s) in states.iter().enumerate() {
                        let (old, since) = self.open[tid];
                        if *s != old {
                            if t > since {
                                self.records_decoded += 1;
                                emit(Record::State {
                                    thread: tid as u32,
                                    begin: since,
                                    end: t,
                                    state: old.paraver_state(),
                                });
                            }
                            self.open[tid] = (*s, t);
                        }
                    }
                    pos += self.srec_len;
                }
                TAG_EVENT => {
                    if pos + EVENT_RECORD_BYTES > self.pending.len() {
                        break;
                    }
                    let (tid, lo, a) =
                        unpack_event_record(&self.pending[pos + 1..pos + EVENT_RECORD_BYTES]);
                    let t = self.unwrap.full(lo);
                    let events = vec![
                        (paraver::events::STALLS, a.stalls),
                        (paraver::events::INT_OPS, a.int_ops),
                        (paraver::events::FLOPS, a.flops),
                        (paraver::events::BYTES_READ, a.bytes_read),
                        (paraver::events::BYTES_WRITTEN, a.bytes_written),
                        (paraver::events::LOCAL_OPS, a.local_ops),
                    ];
                    self.records_decoded += 1;
                    emit(Record::Event {
                        thread: tid,
                        time: t,
                        events,
                    });
                    pos += EVENT_RECORD_BYTES;
                }
                TAG_REGION => {
                    if pos + REGION_RECORD_BYTES > self.pending.len() {
                        break;
                    }
                    let (tid, lo, region, enter) =
                        unpack_region_record(&self.pending[pos + 1..pos + REGION_RECORD_BYTES]);
                    let t = self.unwrap.full(lo);
                    self.records_decoded += 1;
                    emit(Record::Event {
                        thread: tid,
                        time: t,
                        events: vec![(paraver::events::region_type(region), enter as u64)],
                    });
                    pos += REGION_RECORD_BYTES;
                }
                // Line padding (zero bytes at the tail of a flushed line).
                0 => pos += 1,
                tag => panic!("corrupt trace stream: unknown tag {tag:#x} at {pos}"),
            }
        }
        self.pending.drain(..pos);
    }

    /// End of stream: verify nothing is truncated and close every open
    /// state interval at `total_cycles`.
    pub fn finish(self, total_cycles: u64, emit: &mut dyn FnMut(Record)) {
        if !self.pending.is_empty() {
            match self.pending[0] {
                TAG_STATE => panic!("truncated state record"),
                TAG_EVENT => panic!("truncated event record"),
                TAG_REGION => panic!("truncated region record"),
                tag => panic!("corrupt trace stream: unknown tag {tag:#x} at end"),
            }
        }
        for (tid, (state, since)) in self.open.into_iter().enumerate() {
            if total_cycles > since {
                emit(Record::State {
                    thread: tid as u32,
                    begin: since,
                    end: total_cycles,
                    state: state.paraver_state(),
                });
            }
        }
    }
}

/// Decode a complete flushed stream (the materialized path).
///
/// `total_cycles` closes the final state interval of each thread.
pub fn decode_stream(stream: &[u8], num_threads: u32, total_cycles: u64) -> Vec<Record> {
    let mut records = Vec::new();
    let mut dec = StreamDecoder::new(num_threads);
    dec.feed(stream, &mut |r| records.push(r));
    dec.finish(total_cycles, &mut |r| records.push(r));
    records.sort_by_key(|r| r.sort_time());
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{CounterBank, CounterSet};
    use crate::recorder::StateRecorder;

    #[test]
    fn decodes_interleaved_records() {
        let mut stream = Vec::new();
        let mut rec = StateRecorder::new(2);
        stream.extend_from_slice(rec.transition(10, 0, ThreadState::Running).unwrap());
        let mut bank = CounterBank::new(2, CounterSet::default());
        bank.add_ops(0, 1, 2, 3);
        stream.extend_from_slice(&bank.sample(100, 0).unwrap());
        stream.extend_from_slice(rec.transition(200, 0, ThreadState::Idle).unwrap());
        // Simulate line padding.
        stream.extend_from_slice(&[0u8; 13]);
        let records = decode_stream(&stream, 2, 300);
        // Thread 0: Idle [0,10), Running [10,200), Idle [200,300).
        let states: Vec<_> = records
            .iter()
            .filter(|r| matches!(r, Record::State { thread: 0, .. }))
            .collect();
        assert_eq!(states.len(), 3, "{records:?}");
        // Thread 1: single Idle interval [0,300).
        let t1: Vec<_> = records
            .iter()
            .filter(|r| matches!(r, Record::State { thread: 1, .. }))
            .collect();
        assert_eq!(t1.len(), 1);
        let ev = records
            .iter()
            .find(|r| matches!(r, Record::Event { .. }))
            .unwrap();
        if let Record::Event { time, events, .. } = ev {
            assert_eq!(*time, 100);
            assert_eq!(events[2], (paraver::events::FLOPS, 2));
        }
    }

    #[test]
    fn decodes_region_records_as_region_events() {
        use crate::recorder::pack_region_record;
        let mut stream = Vec::new();
        stream.extend_from_slice(&pack_region_record(10, 0, 0, true));
        stream.extend_from_slice(&pack_region_record(25, 0, 3, true));
        stream.extend_from_slice(&pack_region_record(40, 0, 3, false));
        let records = decode_stream(&stream, 1, 100);
        let region_events: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                Record::Event { time, events, .. } => Some((*time, events[0])),
                _ => None,
            })
            .collect();
        assert_eq!(
            region_events,
            vec![
                (10, (paraver::events::region_type(0), 1)),
                (25, (paraver::events::region_type(3), 1)),
                (40, (paraver::events::region_type(3), 0)),
            ]
        );
    }

    #[test]
    fn unwraps_32bit_counter() {
        let mut u = Unwrapper::new();
        assert_eq!(u.full(10), 10);
        assert_eq!(u.full(u32::MAX - 1), (u32::MAX - 1) as u64);
        // Wraparound: small value after a large one.
        assert_eq!(u.full(5), (1u64 << 32) | 5);
    }

    #[test]
    #[should_panic(expected = "unknown tag")]
    fn corrupt_stream_detected() {
        let _ = decode_stream(&[0xFF], 1, 10);
    }

    #[test]
    fn empty_stream_gives_idle_timeline() {
        let records = decode_stream(&[], 3, 1000);
        assert_eq!(records.len(), 3);
        for r in &records {
            match r {
                Record::State {
                    begin, end, state, ..
                } => {
                    assert_eq!((*begin, *end), (0, 1000));
                    assert_eq!(*state, paraver::states::IDLE);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn chunked_feed_matches_one_shot_decode() {
        // Build a realistic mixed stream.
        let mut stream = Vec::new();
        let mut rec = StateRecorder::new(3);
        let mut bank = CounterBank::new(3, CounterSet::default());
        for i in 0..50u64 {
            let tid = (i % 3) as u32;
            let s = if i % 2 == 0 {
                ThreadState::Running
            } else {
                ThreadState::Spinning
            };
            if let Some(r) = rec.transition(i * 10, tid, s) {
                let r = r.to_vec();
                stream.extend_from_slice(&r);
            }
            bank.add_ops(tid, i, i * 2, 1);
            if let Some(r) = bank.sample(i * 10 + 5, tid) {
                stream.extend_from_slice(&r);
            }
        }
        let expect = decode_stream(&stream, 3, 1000);

        // Feed the same bytes in adversarial chunk sizes, including ones
        // that split records mid-way.
        for chunk_size in [1usize, 3, 7, 64, 1000] {
            let mut dec = StreamDecoder::new(3);
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                dec.feed(chunk, &mut |r| got.push(r));
                assert!(
                    dec.pending_bytes() < EVENT_RECORD_BYTES.max(state_record_bytes(3)),
                    "carry-over is bounded by one record"
                );
            }
            dec.finish(1000, &mut |r| got.push(r));
            got.sort_by_key(|r| r.sort_time());
            assert_eq!(got, expect, "chunk size {chunk_size}");
        }
    }

    #[test]
    #[should_panic(expected = "truncated event record")]
    fn truncation_detected_at_finish() {
        let mut bank = CounterBank::new(1, CounterSet::default());
        bank.add_ops(0, 1, 1, 1);
        let full = bank.sample(10, 0).unwrap();
        let mut dec = StreamDecoder::new(1);
        dec.feed(&full[..EVENT_RECORD_BYTES - 3], &mut |_| {});
        dec.finish(100, &mut |_| {});
    }
}
