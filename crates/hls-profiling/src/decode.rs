//! Decoding the flushed trace-buffer stream into Paraver records.
//!
//! "[The performance counters are] periodically stored to external memory to
//! avoid overflow of the counters. There they can later be accessed from the
//! host for analysis" (§IV-B). This module is that host-side analysis step:
//! it walks the byte stream the buffer flushed to (simulated) DRAM and
//! reconstructs
//!
//! * per-thread **state intervals** from the packed all-thread state
//!   snapshots (pairing consecutive snapshots per thread),
//! * **event records** from the sampled counter aggregates,
//! * full 64-bit times from the hardware's 32-bit cycle counter, by
//!   unwrapping at each backwards jump (records are buffer-ordered, i.e.
//!   nearly time-ordered).

use crate::counters::{unpack_event_record, EVENT_RECORD_BYTES};
use crate::recorder::{state_record_bytes, unpack_state_record, TAG_EVENT, TAG_STATE};
use fpga_sim::ThreadState;
use paraver::model::Record;

/// Reconstructs 64-bit cycle counts from truncated 32-bit stamps.
struct Unwrapper {
    epoch: u64,
    last: u32,
}

impl Unwrapper {
    fn new() -> Self {
        Unwrapper { epoch: 0, last: 0 }
    }

    fn full(&mut self, lo: u32) -> u64 {
        // A large backwards jump means the 32-bit counter wrapped.
        if lo < self.last && self.last - lo > u32::MAX / 2 {
            self.epoch += 1;
        }
        self.last = lo;
        (self.epoch << 32) | lo as u64
    }
}

/// Decode a complete flushed stream.
///
/// `total_cycles` closes the final state interval of each thread.
pub fn decode_stream(stream: &[u8], num_threads: u32, total_cycles: u64) -> Vec<Record> {
    let srec_len = state_record_bytes(num_threads);
    let mut records = Vec::new();
    let mut unwrap = Unwrapper::new();
    // Per-thread open interval: (state, since).
    let mut open: Vec<(ThreadState, u64)> = vec![(ThreadState::Idle, 0); num_threads as usize];
    let mut pos = 0usize;
    while pos < stream.len() {
        match stream[pos] {
            TAG_STATE => {
                assert!(pos + srec_len <= stream.len(), "truncated state record");
                let (lo, states) = unpack_state_record(&stream[pos + 1..pos + srec_len], num_threads);
                let t = unwrap.full(lo);
                for (tid, s) in states.iter().enumerate() {
                    let (old, since) = open[tid];
                    if *s != old {
                        if t > since {
                            records.push(Record::State {
                                thread: tid as u32,
                                begin: since,
                                end: t,
                                state: old.paraver_state(),
                            });
                        }
                        open[tid] = (*s, t);
                    }
                }
                pos += srec_len;
            }
            TAG_EVENT => {
                assert!(
                    pos + EVENT_RECORD_BYTES <= stream.len(),
                    "truncated event record"
                );
                let (tid, lo, a) =
                    unpack_event_record(&stream[pos + 1..pos + EVENT_RECORD_BYTES]);
                let t = unwrap.full(lo);
                let events = vec![
                    (paraver::events::STALLS, a.stalls),
                    (paraver::events::INT_OPS, a.int_ops),
                    (paraver::events::FLOPS, a.flops),
                    (paraver::events::BYTES_READ, a.bytes_read),
                    (paraver::events::BYTES_WRITTEN, a.bytes_written),
                    (paraver::events::LOCAL_OPS, a.local_ops),
                ];
                records.push(Record::Event {
                    thread: tid,
                    time: t,
                    events,
                });
                pos += EVENT_RECORD_BYTES;
            }
            // Line padding (zero bytes at the tail of a flushed line).
            0 => pos += 1,
            tag => panic!("corrupt trace stream: unknown tag {tag:#x} at {pos}"),
        }
    }
    // Close every open interval at end of run.
    for (tid, (state, since)) in open.into_iter().enumerate() {
        if total_cycles > since {
            records.push(Record::State {
                thread: tid as u32,
                begin: since,
                end: total_cycles,
                state: state.paraver_state(),
            });
        }
    }
    records.sort_by_key(|r| r.sort_time());
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{CounterBank, CounterSet};
    use crate::recorder::StateRecorder;

    #[test]
    fn decodes_interleaved_records() {
        let mut stream = Vec::new();
        let mut rec = StateRecorder::new(2);
        stream.extend_from_slice(rec.transition(10, 0, ThreadState::Running).unwrap());
        let mut bank = CounterBank::new(2, CounterSet::default());
        bank.add_ops(0, 1, 2, 3);
        stream.extend_from_slice(&bank.sample(100, 0).unwrap());
        stream.extend_from_slice(rec.transition(200, 0, ThreadState::Idle).unwrap());
        // Simulate line padding.
        stream.extend_from_slice(&[0u8; 13]);
        let records = decode_stream(&stream, 2, 300);
        // Thread 0: Idle [0,10), Running [10,200), Idle [200,300).
        let states: Vec<_> = records
            .iter()
            .filter(|r| matches!(r, Record::State { thread: 0, .. }))
            .collect();
        assert_eq!(states.len(), 3, "{records:?}");
        // Thread 1: single Idle interval [0,300).
        let t1: Vec<_> = records
            .iter()
            .filter(|r| matches!(r, Record::State { thread: 1, .. }))
            .collect();
        assert_eq!(t1.len(), 1);
        let ev = records
            .iter()
            .find(|r| matches!(r, Record::Event { .. }))
            .unwrap();
        if let Record::Event { time, events, .. } = ev {
            assert_eq!(*time, 100);
            assert_eq!(events[2], (paraver::events::FLOPS, 2));
        }
    }

    #[test]
    fn unwraps_32bit_counter() {
        let mut u = Unwrapper::new();
        assert_eq!(u.full(10), 10);
        assert_eq!(u.full(u32::MAX - 1), (u32::MAX - 1) as u64);
        // Wraparound: small value after a large one.
        assert_eq!(u.full(5), (1u64 << 32) | 5);
    }

    #[test]
    #[should_panic(expected = "unknown tag")]
    fn corrupt_stream_detected() {
        let _ = decode_stream(&[0xFF], 1, 10);
    }

    #[test]
    fn empty_stream_gives_idle_timeline() {
        let records = decode_stream(&[], 3, 1000);
        assert_eq!(records.len(), 3);
        for r in &records {
            match r {
                Record::State {
                    begin, end, state, ..
                } => {
                    assert_eq!((*begin, *end), (0, 1000));
                    assert_eq!(*state, paraver::states::IDLE);
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
