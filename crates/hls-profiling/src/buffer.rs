//! The trace buffer.
//!
//! "Each record is saved into a buffer; when the buffer is nearly full, the
//! buffer is flushed to the external memory, and resumes operations.
//! Currently, the width of the buffer is equal to the data-width of the
//! external memory controller (512-bit), but can be tuned" (§IV-B.1).
//!
//! The buffer stores the packed byte stream of records; a flush drains it as
//! one burst whose size and timestamp are reported so the simulator level
//! can account for the DRAM bandwidth the tracing consumes.
//!
//! Two drain modes mirror the two host-side consumption models:
//!
//! * **retaining** ([`TraceBuffer::new`]) — every flush appends to an
//!   in-memory copy of the full stream, read back at end of run (the
//!   materialized path);
//! * **draining** ([`TraceBuffer::draining`]) — every flush hands its bytes
//!   to a caller-supplied callback and the buffer forgets them (the
//!   streaming path: resident bytes stay bounded by the buffer capacity for
//!   arbitrarily long runs).
//!
//! Records are never split across a flush: a record that would cross the
//! high-water mark triggers a flush *before* it is staged, and a record
//! larger than the high-water mark itself is flushed immediately after
//! staging. `flush_count()`/`flushed_bytes()` stay consistent with the
//! per-flush log/callbacks in both modes.

/// One flush of the trace buffer to external memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flush {
    /// Cycle at which the flush was triggered.
    pub at_cycle: u64,
    /// Bytes written to external memory.
    pub bytes: u64,
}

/// Byte-accurate trace buffer with 512-bit (64 B) line organisation.
#[derive(Debug)]
pub struct TraceBuffer {
    line_bytes: usize,
    capacity_bytes: usize,
    /// Fill level (in bytes) at which a flush triggers ("nearly full").
    high_water: usize,
    staged: Vec<u8>,
    /// The complete flushed stream, in flush order (retaining mode only —
    /// this is what the host reads back from external memory after the run).
    flushed: Vec<u8>,
    /// Per-flush log for bandwidth accounting (retaining mode only; in
    /// draining mode the callback receives each [`Flush`] instead).
    flush_log: Vec<Flush>,
    retain: bool,
    flush_count: usize,
    flushed_bytes: u64,
    peak_staged: usize,
}

impl TraceBuffer {
    /// A retaining buffer of `lines` 512-bit lines (the materialized path).
    pub fn new(lines: usize) -> Self {
        Self::build(lines, true)
    }

    /// A draining buffer of `lines` 512-bit lines: flushes must go through
    /// [`Self::push_with`]/[`Self::flush_with`], which hand the bytes to a
    /// callback instead of accumulating them.
    pub fn draining(lines: usize) -> Self {
        Self::build(lines, false)
    }

    fn build(lines: usize, retain: bool) -> Self {
        let line_bytes = 64;
        let capacity = lines.max(2) * line_bytes;
        TraceBuffer {
            line_bytes,
            capacity_bytes: capacity,
            high_water: capacity - capacity / 8, // flush at 7/8 full
            staged: Vec::with_capacity(capacity),
            flushed: Vec::new(),
            flush_log: Vec::new(),
            retain,
            flush_count: 0,
            flushed_bytes: 0,
            peak_staged: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Capacity in kilobits (for the BRAM cost model).
    pub fn capacity_kbits(&self) -> u64 {
        (self.capacity_bytes as u64 * 8) / 1024
    }

    /// Append a packed record at cycle `t`; flushes first if it would cross
    /// the high-water mark. Retaining mode only.
    pub fn push(&mut self, t: u64, record: &[u8]) {
        assert!(
            self.retain,
            "draining TraceBuffer requires push_with (a plain push would drop flushed bytes)"
        );
        self.push_impl(t, record, &mut |_, _| {});
    }

    /// Append a packed record at cycle `t`, handing any triggered flush's
    /// bytes to `drain`.
    pub fn push_with(&mut self, t: u64, record: &[u8], drain: &mut dyn FnMut(Flush, &[u8])) {
        self.push_impl(t, record, drain);
    }

    fn push_impl(&mut self, t: u64, record: &[u8], drain: &mut dyn FnMut(Flush, &[u8])) {
        // Flush *before* a record that doesn't fit: records are atomic and
        // never straddle a flush boundary.
        if self.staged.len() + record.len() > self.high_water {
            self.flush_impl(t, drain);
        }
        self.staged.extend_from_slice(record);
        self.peak_staged = self.peak_staged.max(self.staged.len());
        // A record larger than the whole staging area can't wait for the
        // next push to displace it.
        if record.len() > self.high_water {
            self.flush_impl(t, drain);
        }
    }

    /// Force a flush (used at end of run so no records are lost). Retaining
    /// mode only.
    pub fn flush(&mut self, t: u64) {
        assert!(
            self.retain,
            "draining TraceBuffer requires flush_with (a plain flush would drop flushed bytes)"
        );
        self.flush_impl(t, &mut |_, _| {});
    }

    /// Force a flush, handing the staged bytes to `drain`.
    pub fn flush_with(&mut self, t: u64, drain: &mut dyn FnMut(Flush, &[u8])) {
        self.flush_impl(t, drain);
    }

    fn flush_impl(&mut self, t: u64, drain: &mut dyn FnMut(Flush, &[u8])) {
        if self.staged.is_empty() {
            return;
        }
        // The DMA writes whole 512-bit lines: pad the tail.
        let padded = self.staged.len().div_ceil(self.line_bytes) * self.line_bytes;
        let f = Flush {
            at_cycle: t,
            bytes: padded as u64,
        };
        self.flush_count += 1;
        self.flushed_bytes += padded as u64;
        if self.retain {
            self.flush_log.push(f);
            self.flushed.append(&mut self.staged);
        } else {
            drain(f, &self.staged);
            self.staged.clear();
        }
    }

    /// The full flushed stream (retaining mode; call after the final
    /// [`Self::flush`]).
    pub fn stream(&self) -> &[u8] {
        debug_assert!(self.retain, "draining buffers do not keep the stream");
        &self.flushed
    }

    /// Per-flush log (retaining mode).
    pub fn flush_log(&self) -> &[Flush] {
        &self.flush_log
    }

    /// Number of flushes so far (both modes).
    pub fn flush_count(&self) -> usize {
        self.flush_count
    }

    /// Total bytes written to external memory by flushes, with line padding
    /// (both modes).
    pub fn flushed_bytes(&self) -> u64 {
        self.flushed_bytes
    }

    /// Largest staged fill level ever reached — the buffer's actual
    /// in-fabric memory bound.
    pub fn peak_staged_bytes(&self) -> usize {
        self.peak_staged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_at_high_water() {
        let mut b = TraceBuffer::new(2); // 128 B capacity, flush at 112
        for i in 0..13 {
            b.push(i, &[i as u8; 10]);
        }
        assert!(
            b.flush_count() > 0,
            "130 bytes through a 128 B buffer must flush"
        );
        b.flush(99);
        assert_eq!(b.stream().len(), 130);
        // Stream preserves order.
        assert_eq!(b.stream()[0], 0);
        assert_eq!(b.stream()[129], 12);
    }

    #[test]
    fn flush_pads_to_lines() {
        let mut b = TraceBuffer::new(8);
        b.push(5, &[1, 2, 3]);
        b.flush(10);
        assert_eq!(b.flush_count(), 1);
        assert_eq!(b.flush_log().len(), 1);
        assert_eq!(
            b.flush_log()[0].bytes,
            64,
            "3 bytes pad to one 512-bit line"
        );
        assert_eq!(b.flush_log()[0].at_cycle, 10);
        assert_eq!(b.stream(), &[1, 2, 3]);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut b = TraceBuffer::new(4);
        b.flush(0);
        assert_eq!(b.flush_count(), 0);
        assert_eq!(b.flushed_bytes(), 0);
    }

    #[test]
    fn capacity_kbits() {
        let b = TraceBuffer::new(512);
        assert_eq!(b.capacity_kbits(), 512 * 64 * 8 / 1024);
    }

    #[test]
    fn exact_high_water_boundary_never_splits_records() {
        // 128 B capacity → high water 112. Records of 16 B: exactly 7 fill
        // the buffer to the mark without flushing; the 8th flushes first.
        let mut b = TraceBuffer::new(2);
        let rec = |v: u8| [v; 16];
        for v in 0..7 {
            b.push(v as u64, &rec(v));
            assert_eq!(b.flush_count(), 0, "record {v} still fits");
        }
        b.push(7, &rec(7));
        assert_eq!(b.flush_count(), 1, "8th record must flush the first 7");
        assert_eq!(
            b.flush_log()[0].bytes,
            128,
            "7×16 B staged pads to two 512-bit lines"
        );
        b.flush(99);
        // All 8 records intact and in order — no record split by the flush.
        let s = b.stream();
        assert_eq!(s.len(), 128);
        for v in 0..8u8 {
            assert_eq!(&s[v as usize * 16..(v as usize + 1) * 16], &rec(v));
        }
        assert_eq!(
            b.flushed_bytes(),
            b.flush_log().iter().map(|f| f.bytes).sum::<u64>(),
            "counter and log must agree"
        );
        assert_eq!(b.flush_count(), b.flush_log().len());
    }

    #[test]
    fn oversized_record_flushes_around_itself() {
        let mut b = TraceBuffer::new(2); // high water 112
        b.push(1, &[7; 10]);
        let big = [9u8; 200]; // larger than the whole staging area
        b.push(2, &big);
        // Flush 1: the 10 staged bytes (before). Flush 2: the big record
        // itself (after) — it never merges with neighbours.
        assert_eq!(b.flush_count(), 2);
        assert_eq!(b.flush_log()[0].bytes, 64);
        assert_eq!(b.flush_log()[1].bytes, 256, "200 B pads to 4 lines");
        b.push(3, &[1; 4]);
        b.flush(4);
        assert_eq!(b.stream().len(), 10 + 200 + 4);
        assert_eq!(b.peak_staged_bytes(), 200);
    }

    #[test]
    fn draining_mode_hands_bytes_to_callback() {
        let mut b = TraceBuffer::draining(2);
        let mut chunks: Vec<(Flush, Vec<u8>)> = Vec::new();
        for i in 0..13 {
            b.push_with(i, &[i as u8; 10], &mut |f, bytes| {
                chunks.push((f, bytes.to_vec()));
            });
        }
        b.flush_with(99, &mut |f, bytes| chunks.push((f, bytes.to_vec())));
        let total: usize = chunks.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(total, 130, "drained chunks carry the unpadded stream");
        assert_eq!(b.flush_count(), chunks.len());
        assert_eq!(
            b.flushed_bytes(),
            chunks.iter().map(|(f, _)| f.bytes).sum::<u64>()
        );
        // Resident memory stays bounded: nothing accumulates after flushes.
        assert!(b.peak_staged_bytes() <= b.capacity_bytes());
        let reassembled: Vec<u8> = chunks.iter().flat_map(|(_, c)| c.clone()).collect();
        assert_eq!(&reassembled[0..10], &[0; 10]);
        assert_eq!(&reassembled[120..130], &[12; 10]);
    }

    #[test]
    #[should_panic(expected = "push_with")]
    fn draining_buffer_rejects_plain_push_overflow() {
        let mut b = TraceBuffer::draining(2);
        b.push(0, &[1; 8]);
    }
}
