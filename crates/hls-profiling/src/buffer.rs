//! The trace buffer.
//!
//! "Each record is saved into a buffer; when the buffer is nearly full, the
//! buffer is flushed to the external memory, and resumes operations.
//! Currently, the width of the buffer is equal to the data-width of the
//! external memory controller (512-bit), but can be tuned" (§IV-B.1).
//!
//! The buffer stores the packed byte stream of records; a flush drains it as
//! one burst whose size and timestamp are reported so the simulator level
//! can account for the DRAM bandwidth the tracing consumes.

use serde::{Deserialize, Serialize};

/// One flush of the trace buffer to external memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flush {
    /// Cycle at which the flush was triggered.
    pub at_cycle: u64,
    /// Bytes written to external memory.
    pub bytes: u64,
}

/// Byte-accurate trace buffer with 512-bit (64 B) line organisation.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    line_bytes: usize,
    capacity_bytes: usize,
    /// Fill level (in bytes) at which a flush triggers ("nearly full").
    high_water: usize,
    staged: Vec<u8>,
    /// The complete flushed stream, in flush order (this is what the host
    /// reads back from external memory after the run).
    flushed: Vec<u8>,
    /// Flush log for bandwidth accounting.
    pub flushes: Vec<Flush>,
}

impl TraceBuffer {
    /// A buffer of `lines` 512-bit lines.
    pub fn new(lines: usize) -> Self {
        let line_bytes = 64;
        let capacity = lines.max(2) * line_bytes;
        TraceBuffer {
            line_bytes,
            capacity_bytes: capacity,
            high_water: capacity - capacity / 8, // flush at 7/8 full
            staged: Vec::with_capacity(capacity),
            flushed: Vec::new(),
            flushes: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Capacity in kilobits (for the BRAM cost model).
    pub fn capacity_kbits(&self) -> u64 {
        (self.capacity_bytes as u64 * 8) / 1024
    }

    /// Append a packed record at cycle `t`; flushes first if it would cross
    /// the high-water mark.
    pub fn push(&mut self, t: u64, record: &[u8]) {
        if self.staged.len() + record.len() > self.high_water {
            self.flush(t);
        }
        self.staged.extend_from_slice(record);
    }

    /// Force a flush (used at end of run so no records are lost).
    pub fn flush(&mut self, t: u64) {
        if self.staged.is_empty() {
            return;
        }
        // The DMA writes whole 512-bit lines: pad the tail.
        let padded = self.staged.len().div_ceil(self.line_bytes) * self.line_bytes;
        self.flushes.push(Flush {
            at_cycle: t,
            bytes: padded as u64,
        });
        self.flushed.append(&mut self.staged);
    }

    /// The full flushed stream (call after the final [`Self::flush`]).
    pub fn stream(&self) -> &[u8] {
        &self.flushed
    }

    /// Total bytes written to external memory by flushes (with padding).
    pub fn flushed_bytes(&self) -> u64 {
        self.flushes.iter().map(|f| f.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_at_high_water() {
        let mut b = TraceBuffer::new(2); // 128 B capacity, flush at 112
        for i in 0..13 {
            b.push(i, &[i as u8; 10]);
        }
        assert!(
            !b.flushes.is_empty(),
            "130 bytes through a 128 B buffer must flush"
        );
        b.flush(99);
        assert_eq!(b.stream().len(), 130);
        // Stream preserves order.
        assert_eq!(b.stream()[0], 0);
        assert_eq!(b.stream()[129], 12);
    }

    #[test]
    fn flush_pads_to_lines() {
        let mut b = TraceBuffer::new(8);
        b.push(5, &[1, 2, 3]);
        b.flush(10);
        assert_eq!(b.flushes.len(), 1);
        assert_eq!(b.flushes[0].bytes, 64, "3 bytes pad to one 512-bit line");
        assert_eq!(b.flushes[0].at_cycle, 10);
        assert_eq!(b.stream(), &[1, 2, 3]);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut b = TraceBuffer::new(4);
        b.flush(0);
        assert!(b.flushes.is_empty());
        assert_eq!(b.flushed_bytes(), 0);
    }

    #[test]
    fn capacity_kbits() {
        let b = TraceBuffer::new(512);
        assert_eq!(b.capacity_kbits(), 512 * 64 * 8 / 1024);
    }
}
