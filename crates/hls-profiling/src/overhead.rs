//! Hardware cost of the profiling infrastructure and the §V-B overhead
//! study.
//!
//! The paper reports, over its first case study (the GEMM variants), a
//! register overhead of at most 5.4% (geo-mean 2.41%), an ALM overhead of at
//! most 4% (geo-mean 3.42%), and an fmax degradation of at most 8 MHz at
//! 140 MHz; its (larger) second design pays only 1.3% / 1.5% / 1 MHz. The
//! absolute cost of the unit is nearly constant — counters scale with thread
//! count, not with datapath size — so the *percentages* shrink as designs
//! grow, which is exactly how this model reproduces both studies.

use crate::unit::ProfilingConfig;
use nymble_hls::cost::{fmax_model, CostParams, FitReport};

/// Per-module area parameters of the profiling hardware.
#[derive(Clone, Debug)]
pub struct OverheadParams {
    /// Adder/valid-gating logic of one counter module.
    pub counter_alms_base: u32,
    /// Additional ALMs per thread source (the two inputs per source).
    pub counter_alms_per_thread: u32,
    /// Aggregate registers per thread per counter (32-bit + valid).
    pub counter_regs_per_thread: u32,
    /// Fixed registers of one counter module (sample timer share etc.).
    pub counter_regs_base: u32,
    /// State machine + packer ALMs, plus per-thread state register cost.
    pub state_alms_base: u32,
    pub state_alms_per_thread: u32,
    pub state_regs_per_thread: u32,
    /// Flush FSM + buffer write port.
    pub flush_alms: u32,
    pub flush_regs: u32,
    /// Extra Avalon master for trace write-back.
    pub avalon_alms: u32,
    pub avalon_regs: u32,
}

impl Default for OverheadParams {
    fn default() -> Self {
        OverheadParams {
            counter_alms_base: 30,
            counter_alms_per_thread: 4,
            counter_regs_per_thread: 12,
            counter_regs_base: 20,
            state_alms_base: 40,
            state_alms_per_thread: 6,
            state_regs_per_thread: 12,
            flush_alms: 80,
            flush_regs: 150,
            avalon_alms: 60,
            avalon_regs: 120,
        }
    }
}

/// Fit of the profiling unit alone. Under an auto-probe plan the counter
/// population is the plan's: one module per selected event class plus one
/// cycle counter per instrumented region (the same uniform pricing
/// `nymble_hls::probe::select` budgeted with, pinned by a contract test
/// below).
pub fn profiling_fit(num_threads: u32, cfg: &ProfilingConfig, p: &OverheadParams) -> FitReport {
    let n = num_threads as u64;
    let mut alms = 0u64;
    let mut regs = 0u64;
    let counters = match &cfg.plan {
        Some(plan) => (plan.counters.len() + plan.regions.len()) as u64,
        None => cfg.counters.count() as u64,
    };
    alms += counters * (p.counter_alms_base as u64 + p.counter_alms_per_thread as u64 * n);
    regs += counters * (p.counter_regs_base as u64 + p.counter_regs_per_thread as u64 * n);
    if cfg.record_states {
        alms += p.state_alms_base as u64 + p.state_alms_per_thread as u64 * n;
        regs += p.state_regs_per_thread as u64 * n + 32; // states + clock reg
    }
    if counters > 0 || cfg.record_states {
        alms += p.flush_alms as u64 + p.avalon_alms as u64;
        regs += p.flush_regs as u64 + p.avalon_regs as u64;
    }
    let bram_kbits = (cfg.buffer_lines as u64 * 64 * 8) / 1024;
    FitReport {
        alms,
        registers: regs,
        dsps: 0,
        bram_kbits,
        fmax_mhz: 0.0, // meaningless standalone; derived on combination
    }
}

/// Fit of a design *with* the profiling unit: base + unit, fmax re-derived
/// from the combined logic (the routing-pressure effect behind the paper's
/// 8 MHz / 1 MHz degradations).
pub fn instrumented_fit(
    base: &FitReport,
    num_threads: u32,
    cfg: &ProfilingConfig,
    p: &OverheadParams,
    cost: &CostParams,
) -> FitReport {
    let unit = profiling_fit(num_threads, cfg, p);
    let alms = base.alms + unit.alms;
    let regs = base.registers + unit.registers;
    FitReport {
        alms,
        registers: regs,
        dsps: base.dsps,
        bram_kbits: base.bram_kbits + unit.bram_kbits,
        fmax_mhz: fmax_model(alms, regs, cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterSet;

    fn cfg() -> ProfilingConfig {
        ProfilingConfig::default()
    }

    #[test]
    fn unit_cost_scales_with_threads_not_design() {
        let p = OverheadParams::default();
        let f1 = profiling_fit(1, &cfg(), &p);
        let f8 = profiling_fit(8, &cfg(), &p);
        assert!(f8.registers > f1.registers);
        assert!(f8.alms > f1.alms);
        // Absolute size stays in the ~few-kALM class (the reason overhead
        // percentages shrink for larger designs).
        assert!(f8.alms < 3_000, "{}", f8.alms);
        assert!(f8.registers < 5_000, "{}", f8.registers);
    }

    #[test]
    fn counters_contribute_similarly() {
        // §V-B: "each of the counters contributes similarly to the hardware
        // overhead, none ... remarkably expensive".
        let p = OverheadParams::default();
        let base = profiling_fit(
            8,
            &ProfilingConfig {
                counters: CounterSet::NONE,
                ..cfg()
            },
            &p,
        );
        let mut costs = Vec::new();
        for i in 0..6 {
            let mut set = CounterSet::NONE;
            match i {
                0 => set.stalls = true,
                1 => set.int_ops = true,
                2 => set.flops = true,
                3 => set.mem_read = true,
                4 => set.mem_write = true,
                _ => set.local_ops = true,
            }
            let f = profiling_fit(
                8,
                &ProfilingConfig {
                    counters: set,
                    ..cfg()
                },
                &p,
            );
            costs.push(f.alms - base.alms);
        }
        let min = *costs.iter().min().unwrap();
        let max = *costs.iter().max().unwrap();
        assert_eq!(min, max, "uniform per-counter cost: {costs:?}");
    }

    #[test]
    fn overhead_shrinks_for_bigger_designs() {
        let p = OverheadParams::default();
        let cost = CostParams::default();
        let small = FitReport {
            alms: 28_000,
            registers: 48_000,
            dsps: 16,
            bram_kbits: 512,
            fmax_mhz: fmax_model(28_000, 48_000, &cost),
        };
        let big = FitReport {
            alms: 110_000,
            registers: 200_000,
            dsps: 64,
            bram_kbits: 2048,
            fmax_mhz: fmax_model(110_000, 200_000, &cost),
        };
        let small_i = instrumented_fit(&small, 8, &cfg(), &p, &cost);
        let big_i = instrumented_fit(&big, 8, &cfg(), &p, &cost);
        let so = small_i.overhead_vs(&small);
        let bo = big_i.overhead_vs(&big);
        assert!(so.alms_pct > bo.alms_pct);
        assert!(so.registers_pct > bo.registers_pct);
        // Percent bands of the paper: small designs a few %, big ~1%.
        assert!(so.alms_pct < 10.0 && so.alms_pct > 0.5, "{so:?}");
        assert!(bo.alms_pct < 2.5, "{bo:?}");
        // fmax degradation exists but is small.
        assert!(
            so.fmax_delta_mhz >= 0.0 && so.fmax_delta_mhz < 10.0,
            "{so:?}"
        );
    }

    /// The selection optimizer in `nymble-hls` cannot see this crate (it
    /// sits below it in the dependency graph), so it budgets with its own
    /// mirror of the per-counter constants. This contract test pins the
    /// mirror to the real cost model — if either side changes, it fails.
    #[test]
    fn probe_cost_params_mirror_overhead_params() {
        let o = OverheadParams::default();
        let m = nymble_hls::ProbeCostParams::default();
        assert_eq!(
            (
                m.counter_alms_base,
                m.counter_alms_per_thread,
                m.counter_regs_base,
                m.counter_regs_per_thread
            ),
            (
                o.counter_alms_base,
                o.counter_alms_per_thread,
                o.counter_regs_base,
                o.counter_regs_per_thread
            ),
            "nymble_hls::ProbeCostParams must mirror OverheadParams"
        );
    }

    /// A plan's budgeted cost equals the counter component of the real fit:
    /// fit(planned cfg) − fit(empty cfg) = the ALMs/regs the knapsack
    /// charged. This is the "selected-plan overhead fits the budget per the
    /// cost model" validation of the auto-probe feature.
    #[test]
    fn planned_fit_matches_the_knapsack_price_and_budget() {
        use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};
        let mut kb = KernelBuilder::new("k", 8);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let x = kb.var("x", Type::F32);
        let n = kb.c_i64(64);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let s = kb.add(v, v);
            kb.set(x, s);
        });
        let k = kb.finish();
        for budget in [256u32, nymble_hls::DEFAULT_PROBE_BUDGET_ALMS] {
            let hls = nymble_hls::HlsConfig {
                probe: nymble_hls::ProbeMode::Auto {
                    budget_alms: budget,
                },
                ..Default::default()
            };
            let plan = nymble_hls::compile(&k, &hls).probe_plan.unwrap();
            assert!(plan.cost_alms <= budget as u64, "plan overshoots budget");
            let p = OverheadParams::default();
            let planned = ProfilingConfig::default().with_plan(plan.clone());
            let baseline = ProfilingConfig {
                counters: CounterSet::NONE,
                ..cfg()
            };
            let planned_fit = profiling_fit(8, &planned, &p);
            let base_fit = profiling_fit(8, &baseline, &p);
            assert_eq!(planned_fit.alms - base_fit.alms, plan.cost_alms);
            assert_eq!(planned_fit.registers - base_fit.registers, plan.cost_regs);
        }
    }

    /// Monotonicity of the cost model, pinned by property: adding counters
    /// (or widening any dimension the unit scales with) never lowers the
    /// modeled overhead.
    #[test]
    fn more_counters_never_lower_overhead() {
        miniprop::forall(200, |rng| {
            let n = rng.range_u32(1, 300);
            let p = OverheadParams::default();
            let cost = CostParams::default();
            // A random counter subset and a random superset of it.
            let mut small = CounterSet::NONE;
            let mut big = CounterSet::NONE;
            for f in [
                |s: &mut CounterSet, v| s.stalls = v,
                |s: &mut CounterSet, v| s.int_ops = v,
                |s: &mut CounterSet, v| s.flops = v,
                |s: &mut CounterSet, v| s.mem_read = v,
                |s: &mut CounterSet, v| s.mem_write = v,
                |s: &mut CounterSet, v| s.local_ops = v,
            ] {
                let in_small = rng.bool();
                f(&mut small, in_small);
                f(&mut big, in_small || rng.bool());
            }
            let states = rng.bool();
            let mk = |set| ProfilingConfig {
                counters: set,
                record_states: states,
                ..ProfilingConfig::default()
            };
            let fs = profiling_fit(n, &mk(small), &p);
            let fb = profiling_fit(n, &mk(big), &p);
            assert!(fb.alms >= fs.alms, "{fb:?} < {fs:?}");
            assert!(fb.registers >= fs.registers);
            // The percentage overhead over a fixed base is monotone too.
            let base = FitReport {
                alms: rng.range_u64(5_000, 200_000),
                registers: rng.range_u64(10_000, 400_000),
                dsps: 0,
                bram_kbits: 0,
                fmax_mhz: 0.0,
            };
            let base = FitReport {
                fmax_mhz: fmax_model(base.alms, base.registers, &cost),
                ..base
            };
            let os = instrumented_fit(&base, n, &mk(small), &p, &cost).overhead_vs(&base);
            let ob = instrumented_fit(&base, n, &mk(big), &p, &cost).overhead_vs(&base);
            assert!(ob.alms_pct >= os.alms_pct);
            assert!(ob.registers_pct >= os.registers_pct);
            assert!(ob.fmax_delta_mhz >= os.fmax_delta_mhz - 1e-9);
        });
    }

    #[test]
    fn disabled_unit_costs_nothing_but_bram() {
        let p = OverheadParams::default();
        let f = profiling_fit(
            8,
            &ProfilingConfig {
                counters: CounterSet::NONE,
                record_states: false,
                ..cfg()
            },
            &p,
        );
        assert_eq!(f.alms, 0);
        assert_eq!(f.registers, 0);
    }
}
