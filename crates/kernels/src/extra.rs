//! Auxiliary kernels: small workloads used by examples, tests and the
//! profiling-overhead sweep (designs of different sizes make the §V-B
//! "overhead shrinks with design size" effect visible).

use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type};

/// `OUT[i] = A[i] + B[i]`, i striped over threads.
pub fn vecadd(n: i64, threads: u32) -> Kernel {
    let mut kb = KernelBuilder::new("vecadd", threads);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let b = kb.buffer("B", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let end = kb.c_i64(n);
    kb.for_each("i", my, end, nt64, |kb, i| {
        let av = kb.load(a, i, Type::F32);
        let bv = kb.load(b, i, Type::F32);
        let s = kb.add(av, bv);
        kb.store(out, i, s);
    });
    kb.finish()
}

/// Dot product with a critical-section reduction (a miniature of the naive
/// GEMM's synchronization pattern).
pub fn dot(n: i64, threads: u32) -> Kernel {
    let mut kb = KernelBuilder::new("dot", threads);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let b = kb.buffer("B", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::ToFrom);
    let sum = kb.var("sum", Type::F32);
    let z = kb.c_f32(0.0);
    kb.set(sum, z);
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let end = kb.c_i64(n);
    kb.for_each("i", my, end, nt64, |kb, i| {
        let av = kb.load(a, i, Type::F32);
        let bv = kb.load(b, i, Type::F32);
        let cur = kb.get(sum);
        let s = kb.mul_add(av, bv, cur);
        kb.set(sum, s);
    });
    kb.critical(|kb| {
        let zero = kb.c_i64(0);
        let cur = kb.load(out, zero, Type::F32);
        let sv = kb.get(sum);
        let upd = kb.add(cur, sv);
        let zero2 = kb.c_i64(0);
        kb.store(out, zero2, upd);
    });
    kb.finish()
}

/// One Jacobi 4-point stencil sweep over an `n×n` grid, rows striped over
/// threads (interior points only). `GRID` is read, `OUT` written.
pub fn jacobi(n: i64, threads: u32) -> Kernel {
    assert!(n >= 3, "stencil needs an interior");
    let mut kb = KernelBuilder::new("jacobi", threads);
    let grid = kb.buffer("GRID", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let one = kb.c_i64(1);
    let start = kb.add(my, one);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let end = kb.c_i64(n - 1);
    kb.for_each("i", start, end, nt64, |kb, i| {
        let one_j = kb.c_i64(1);
        let end_j = kb.c_i64(n - 1);
        let step_j = kb.c_i64(1);
        kb.for_each("j", one_j, end_j, step_j, |kb, j| {
            let n_e = kb.c_i64(n);
            let one_up = kb.c_i64(1);
            let up_row = kb.sub(i, one_up);
            let up0 = kb.mul(up_row, n_e);
            let up = kb.add(up0, j);
            let upv = kb.load(grid, up, Type::F32);
            let n_e2 = kb.c_i64(n);
            let one_dn = kb.c_i64(1);
            let dn_row = kb.add(i, one_dn);
            let dn0 = kb.mul(dn_row, n_e2);
            let dn = kb.add(dn0, j);
            let dnv = kb.load(grid, dn, Type::F32);
            let n_e3 = kb.c_i64(n);
            let row0 = kb.mul(i, n_e3);
            let lf0 = kb.add(row0, j);
            let onel = kb.c_i64(1);
            let lf = kb.sub(lf0, onel);
            let lfv = kb.load(grid, lf, Type::F32);
            let oner = kb.c_i64(1);
            let rt = kb.add(lf0, oner);
            let rtv = kb.load(grid, rt, Type::F32);
            let s1 = kb.add(upv, dnv);
            let s2 = kb.add(lfv, rtv);
            let s = kb.add(s1, s2);
            let q = kb.c_f32(0.25);
            let r = kb.mul(s, q);
            kb.store(out, lf0, r);
        });
    });
    kb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg};
    use nymble_ir::Value;

    fn vals(v: &[f32]) -> Vec<Value> {
        v.iter().map(|&x| Value::F32(x)).collect()
    }

    #[test]
    fn vecadd_works() {
        let n = 64;
        let k = vecadd(n, 4);
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(vals(&a)),
                LaunchArg::Buffer(vals(&b)),
                LaunchArg::Buffer(vec![Value::F32(0.0); n as usize]),
            ],
        );
        let got = buffer_as_f32(&r.buffers[2]);
        for (i, g) in got.iter().enumerate() {
            assert_eq!(*g, 3.0 * i as f32);
        }
    }

    #[test]
    fn dot_matches_reference() {
        let n = 128;
        let a = reference::gen_matrix(12, 5)[..n].to_vec();
        let b = reference::gen_matrix(12, 6)[..n].to_vec();
        let k = dot(n as i64, 4);
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(vals(&a)),
                LaunchArg::Buffer(vals(&b)),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ],
        );
        let got = buffer_as_f32(&r.buffers[2])[0];
        let expect = reference::dot(&a, &b);
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn jacobi_matches_reference() {
        let n = 16usize;
        let g = reference::gen_matrix(n, 9);
        let k = jacobi(n as i64, 3);
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(vals(&g)),
                LaunchArg::Buffer(vec![Value::F32(0.0); n * n]),
            ],
        );
        let got = buffer_as_f32(&r.buffers[1]);
        let expect = reference::jacobi_sweep(&g, n);
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let (g1, e1) = (got[i * n + j], expect[i * n + j]);
                assert!((g1 - e1).abs() < 1e-5, "({i},{j}): {g1} vs {e1}");
            }
        }
    }
}

/// Histogram with a critical-section-protected update — the maximally
/// contended synchronization pattern (every iteration takes the semaphore),
/// stressing the Fig. 2 state machine far beyond the naive GEMM.
///
/// `DATA` holds values in `[0, 1)`; `HIST` has `bins` slots.
pub fn histogram(n: i64, bins: i64, threads: u32) -> Kernel {
    assert!(bins > 0);
    let mut kb = KernelBuilder::new("histogram", threads);
    let data = kb.buffer("DATA", ScalarType::F32, MapDir::To);
    let hist = kb.buffer("HIST", ScalarType::I32, MapDir::ToFrom);
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let end = kb.c_i64(n);
    kb.for_each("i", my, end, nt64, |kb, i| {
        let v = kb.load(data, i, Type::F32);
        let nb = kb.c_f32(bins as f32);
        let scaled = kb.mul(v, nb);
        let bin64 = kb.cast(ScalarType::I64, scaled);
        // clamp to [0, bins-1]
        let zero = kb.c_i64(0);
        let maxb = kb.c_i64(bins - 1);
        let lo = kb.bin(nymble_ir::BinOp::Max, bin64, zero);
        let bin = kb.bin(nymble_ir::BinOp::Min, lo, maxb);
        kb.critical(|kb| {
            let cur = kb.load(hist, bin, Type::I32);
            let one = kb.c_i32(1);
            let inc = kb.add(cur, one);
            kb.store(hist, bin, inc);
        });
    });
    kb.finish()
}

/// CPU reference for [`histogram`].
pub fn histogram_ref(data: &[f32], bins: usize) -> Vec<i32> {
    let mut h = vec![0i32; bins];
    for &v in data {
        let b = ((v * bins as f32) as i64).clamp(0, bins as i64 - 1) as usize;
        h[b] += 1;
    }
    h
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use nymble_ir::interp::{Interpreter, LaunchArg};
    use nymble_ir::Value;

    #[test]
    fn histogram_matches_reference() {
        let n = 200usize;
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).fract()).collect();
        let bins = 8usize;
        let gold = histogram_ref(&data, bins);
        let k = histogram(n as i64, bins as i64, 4);
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(data.iter().map(|&x| Value::F32(x)).collect()),
                LaunchArg::Buffer(vec![Value::I32(0); bins]),
            ],
        );
        let got: Vec<i32> = r.buffers[1].iter().map(|v| v.as_i64() as i32).collect();
        assert_eq!(got, gold);
        assert_eq!(
            r.critical_entries, n as u64,
            "one critical entry per element"
        );
        assert_eq!(got.iter().sum::<i32>(), n as i32, "counts conserved");
    }
}
