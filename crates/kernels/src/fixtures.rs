//! Lint fixtures: for every `nymble-lint` diagnostic code, one minimal
//! kernel that triggers it and one *near-miss* kernel that looks similar
//! but is clean (e.g. the same reduction guarded by `critical`).
//!
//! The fixtures double as dynamic-oracle subjects: they are valid,
//! executable kernels, so the IR interpreter can reproduce the flagged
//! behavior (an observed race for NL001, divergent barrier arrival counts
//! for NL002) while the near-misses run clean.

use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type};

/// One lint fixture: the kernel plus the diagnostic codes it must produce
/// (`expect` is empty for near-miss fixtures, which must lint clean).
pub struct Fixture {
    pub name: &'static str,
    /// Expected `nymble-lint` codes, as stable strings ("NL001"…, "NP001"…).
    pub expect: &'static [&'static str],
    /// Performance fixtures exercise the `NP0xx` family
    /// (`nymble_lint::perf_lint_kernel`); correctness fixtures the `NL0xx`
    /// family. Perf fixtures must additionally lint clean under the
    /// correctness family (the registry CLI checks them under both);
    /// correctness fixtures are unconstrained the other way — a buggy
    /// kernel may well be slow too.
    pub perf: bool,
    pub kernel: Kernel,
}

/// Every fixture, buggy and near-miss, in code order.
pub fn all() -> Vec<Fixture> {
    vec![
        nl001_race(),
        nl001_disjoint(),
        nl002_divergent_barrier(),
        nl002_uniform_barrier(),
        nl002_tid_divergent_barrier(),
        nl002_tid_uniform_barrier(),
        nl003_lost_update(),
        nl003_critical_reduction(),
        nl004_oob(),
        nl004_inbounds(),
        nl005_dead_to(),
        nl005_used_to(),
        nl006_dead_from(),
        nl006_written_from(),
        np001_recurrence(),
        np001_stream(),
        np002_strided(),
        np002_unit_stride(),
        np003_dead_preload(),
        np003_live_preload(),
        np004_critical_in_loop(),
        np004_critical_once(),
        np005_imbalanced_barrier(),
        np005_balanced_barrier(),
    ]
}

/// Fixtures that must produce diagnostics.
pub fn buggy() -> Vec<Fixture> {
    all().into_iter().filter(|f| !f.expect.is_empty()).collect()
}

/// Near-miss fixtures that must lint clean.
pub fn near_misses() -> Vec<Fixture> {
    all().into_iter().filter(|f| f.expect.is_empty()).collect()
}

/// NL001: both threads write the full `OUT[0..8)` range — every element is
/// a write/write race.
fn nl001_race() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl001_race", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let n = kb.c_i64(8);
    kb.for_range("i", n, |kb, i| {
        let tid = kb.thread_id();
        let v = kb.cast(ScalarType::F32, tid);
        kb.store(out, i, v);
    });
    Fixture {
        name: "nl001_race",
        expect: &["NL001"],
        perf: false,
        kernel: kb.finish(),
    }
}

/// Near-miss: the same loop, decomposed `i = tid, tid+NT, …` — the write
/// sets fall in different residue classes mod `num_threads`.
fn nl001_disjoint() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl001_disjoint", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let t = kb.thread_id();
        let v = kb.cast(ScalarType::F32, t);
        kb.store(out, i, v);
    });
    Fixture {
        name: "nl001_disjoint",
        expect: &[],
        perf: false,
        kernel: kb.finish(),
    }
}

/// NL002: only thread 0 reaches the barrier — the other threads never
/// arrive, so in hardware thread 0 waits forever.
fn nl002_divergent_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl002_divergent", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let one = kb.c_f32(1.0);
        kb.store(out, i, one);
    });
    let tid2 = kb.thread_id();
    let zero = kb.c_i64(0);
    let is_zero = kb.bin(nymble_ir::BinOp::Eq, tid2, zero);
    kb.if_then(is_zero, |kb| kb.barrier());
    Fixture {
        name: "nl002_divergent",
        expect: &["NL002"],
        perf: false,
        kernel: kb.finish(),
    }
}

/// Near-miss: the barrier is conditional, but on a *uniform* launch scalar
/// — every thread takes the same branch.
fn nl002_uniform_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl002_uniform", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let flag = kb.scalar_arg("FLAG", ScalarType::I64);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let one = kb.c_f32(1.0);
        kb.store(out, i, one);
    });
    let f = kb.arg(flag);
    let zero = kb.c_i64(0);
    let cond = kb.bin(nymble_ir::BinOp::Gt, f, zero);
    kb.if_then(cond, |kb| kb.barrier());
    Fixture {
        name: "nl002_uniform",
        expect: &[],
        perf: false,
        kernel: kb.finish(),
    }
}

/// NL003: the classic unguarded reduction — every thread repeatedly does
/// `ACC[0] = ACC[0] + 1` without synchronization, losing updates.
fn nl003_lost_update() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl003_lost_update", 2);
    let acc = kb.buffer("ACC", ScalarType::F32, MapDir::ToFrom);
    let n = kb.c_i64(4);
    kb.for_range("r", n, |kb, _r| {
        let zero = kb.c_i64(0);
        let cur = kb.load(acc, zero, Type::F32);
        let one = kb.c_f32(1.0);
        let next = kb.add(cur, one);
        kb.store(acc, zero, next);
    });
    Fixture {
        name: "nl003_lost_update",
        expect: &["NL003"],
        perf: false,
        kernel: kb.finish(),
    }
}

/// Near-miss: the same reduction guarded by `critical` — serialized, clean.
fn nl003_critical_reduction() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl003_critical", 2);
    let acc = kb.buffer("ACC", ScalarType::F32, MapDir::ToFrom);
    let n = kb.c_i64(4);
    kb.for_range("r", n, |kb, _r| {
        kb.critical(|kb| {
            let zero = kb.c_i64(0);
            let cur = kb.load(acc, zero, Type::F32);
            let one = kb.c_f32(1.0);
            let next = kb.add(cur, one);
            kb.store(acc, zero, next);
        });
    });
    Fixture {
        name: "nl003_critical",
        expect: &[],
        perf: false,
        kernel: kb.finish(),
    }
}

/// NL004: a local memory of 8 elements indexed `0..9` — iteration 8 is a
/// proven out-of-bounds store.
fn nl004_oob() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl004_oob", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let scratch = kb.local_mem("SCRATCH", Type::F32, 8);
    let n = kb.c_i64(9);
    kb.for_range("i", n, |kb, i| {
        let zero = kb.c_f32(0.0);
        kb.store_local(scratch, i, zero);
    });
    let tid = kb.thread_id();
    let v = kb.load_local(scratch, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl004_oob",
        expect: &["NL004"],
        perf: false,
        kernel: kb.finish(),
    }
}

/// Near-miss: the same loop with the correct `0..8` bound.
fn nl004_inbounds() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl004_inbounds", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let scratch = kb.local_mem("SCRATCH", Type::F32, 8);
    let n = kb.c_i64(8);
    kb.for_range("i", n, |kb, i| {
        let zero = kb.c_f32(0.0);
        kb.store_local(scratch, i, zero);
    });
    let tid = kb.thread_id();
    let v = kb.load_local(scratch, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl004_inbounds",
        expect: &[],
        perf: false,
        kernel: kb.finish(),
    }
}

/// NL005: `map(to: A)` copies A to the accelerator, but the kernel never
/// reads it.
fn nl005_dead_to() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl005_dead_to", 2);
    let _a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let one = kb.c_f32(1.0);
    kb.store(out, tid, one);
    Fixture {
        name: "nl005_dead_to",
        expect: &["NL005"],
        perf: false,
        kernel: kb.finish(),
    }
}

/// Near-miss: A is actually read.
fn nl005_used_to() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl005_used_to", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let v = kb.load(a, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl005_used_to",
        expect: &[],
        perf: false,
        kernel: kb.finish(),
    }
}

/// NL006: `map(from: OUT)` copies OUT back, but the kernel never writes it
/// — the host reads back garbage.
fn nl006_dead_from() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl006_dead_from", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let res = kb.buffer("RES", ScalarType::F32, MapDir::From);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let v = kb.load(a, tid, Type::F32);
    kb.store(res, tid, v);
    let _ = out;
    Fixture {
        name: "nl006_dead_from",
        expect: &["NL006"],
        perf: false,
        kernel: kb.finish(),
    }
}

/// Near-miss: OUT is written.
fn nl006_written_from() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl006_written_from", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let v = kb.load(a, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl006_written_from",
        expect: &[],
        perf: false,
        kernel: kb.finish(),
    }
}

/// NL002 near-miss (coverage-gap regression): the barrier is under a
/// condition that *mentions* `thread_id` but evaluates identically on every
/// thread (`tid < num_threads` is true for all) — taint alone must not
/// flag it.
fn nl002_tid_uniform_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl002_tid_uniform", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let one = kb.c_f32(1.0);
        kb.store(out, i, one);
    });
    let tid2 = kb.thread_id();
    let nt2 = kb.num_threads_expr();
    let cond = kb.bin(nymble_ir::BinOp::Lt, tid2, nt2);
    kb.if_then(cond, |kb| kb.barrier());
    Fixture {
        name: "nl002_tid_uniform",
        expect: &[],
        perf: false,
        kernel: kb.finish(),
    }
}

/// The one-off-by-one sibling of [`nl002_tid_uniform_barrier`]:
/// `tid < num_threads - 1` excludes the last thread — genuinely divergent.
fn nl002_tid_divergent_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl002_tid_divergent", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let one = kb.c_f32(1.0);
        kb.store(out, i, one);
    });
    let tid2 = kb.thread_id();
    let nt2 = kb.num_threads_expr();
    let one = kb.c_i64(1);
    let last = kb.sub(nt2, one);
    let cond = kb.bin(nymble_ir::BinOp::Lt, tid2, last);
    kb.if_then(cond, |kb| kb.barrier());
    Fixture {
        name: "nl002_tid_divergent",
        expect: &["NL002"],
        perf: false,
        kernel: kb.finish(),
    }
}

// ---------------------------------------------------------------------------
// Performance fixtures (NP family). Triggering fixtures are sized so the
// pathology dominates the analytic model; near-misses stay inside the
// dynamic oracle's 64-element launch buffers.
// ---------------------------------------------------------------------------

/// NP001: a float multiply-accumulate recurrence — each iteration needs the
/// previous `acc`, so the pipelined loop cannot issue one iteration per
/// cycle (II ≥ FAdd + FMul = 8).
fn np001_recurrence() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np001_recurrence", 4);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let acc = kb.var("acc", Type::F32);
    let zero = kb.c_f32(0.0);
    kb.set(acc, zero);
    let tid = kb.thread_id();
    let n = kb.c_i64(512);
    let row = kb.mul(tid, n);
    let n2 = kb.c_i64(512);
    kb.for_range("i", n2, |kb, i| {
        let idx = kb.add(row, i);
        let v = kb.load(a, idx, Type::F32);
        let cur = kb.get(acc);
        let s = kb.add(cur, v);
        let k = kb.c_f32(0.5);
        let scaled = kb.mul(s, k);
        kb.set(acc, scaled);
    });
    let fin = kb.get(acc);
    kb.store(c, tid, fin);
    Fixture {
        name: "np001_recurrence",
        expect: &["NP001"],
        perf: true,
        kernel: kb.finish(),
    }
}

/// Near-miss: the same streaming shape with no carried value — every
/// iteration is independent, II = 1.
fn np001_stream() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np001_stream", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let n = kb.c_i64(32);
    let row = kb.mul(tid, n);
    let n2 = kb.c_i64(32);
    kb.for_range("i", n2, |kb, i| {
        let idx = kb.add(row, i);
        let v = kb.load(a, idx, Type::F32);
        let k = kb.c_f32(0.5);
        let scaled = kb.mul(v, k);
        kb.store(c, idx, scaled);
    });
    Fixture {
        name: "np001_stream",
        expect: &[],
        perf: true,
        kernel: kb.finish(),
    }
}

/// NP002: a stride-16 f32 stream — every access lands on a fresh 64-byte
/// DRAM line but uses only 4 bytes of it (16× line traffic).
fn np002_strided() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np002_strided", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let n = kb.c_i64(64);
    let row = kb.mul(tid, n);
    let n2 = kb.c_i64(64);
    kb.for_range("i", n2, |kb, i| {
        let lin = kb.add(row, i);
        let sixteen = kb.c_i64(16);
        let idx = kb.mul(lin, sixteen);
        let v = kb.load(a, idx, Type::F32);
        kb.store(c, lin, v);
    });
    Fixture {
        name: "np002_strided",
        expect: &["NP002"],
        perf: true,
        kernel: kb.finish(),
    }
}

/// Near-miss: the same copy at unit stride — consecutive elements share
/// lines, traffic equals payload.
fn np002_unit_stride() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np002_unit", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let n = kb.c_i64(32);
    let row = kb.mul(tid, n);
    let n2 = kb.c_i64(32);
    kb.for_range("i", n2, |kb, i| {
        let idx = kb.add(row, i);
        let v = kb.load(a, idx, Type::F32);
        kb.store(c, idx, v);
    });
    Fixture {
        name: "np002_unit",
        expect: &[],
        perf: true,
        kernel: kb.finish(),
    }
}

/// NP003: a 256-element tile is DMA-preloaded but no compute ever reads
/// it — pure wasted DRAM bandwidth (1 KiB per thread).
fn np003_dead_preload() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np003_dead_preload", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let tile = kb.local_mem("TILE", Type::F32, 256);
    let zero = kb.c_i64(0);
    let zero2 = kb.c_i64(0);
    let len = kb.c_i64(256);
    kb.preload(tile, a, zero, zero2, len);
    let tid = kb.thread_id();
    let one = kb.c_f32(1.0);
    kb.store(c, tid, one);
    Fixture {
        name: "np003_dead_preload",
        expect: &["NP003"],
        perf: true,
        kernel: kb.finish(),
    }
}

/// Near-miss: the preloaded tile is actually consumed by the compute loop.
fn np003_live_preload() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np003_live_preload", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let tile = kb.local_mem("TILE", Type::F32, 32);
    let zero = kb.c_i64(0);
    let zero2 = kb.c_i64(0);
    let len = kb.c_i64(32);
    kb.preload(tile, a, zero, zero2, len);
    let tid = kb.thread_id();
    let n = kb.c_i64(32);
    let row = kb.mul(tid, n);
    let n2 = kb.c_i64(32);
    kb.for_range("i", n2, |kb, i| {
        let v = kb.load_local(tile, i, Type::F32);
        let idx = kb.add(row, i);
        kb.store(c, idx, v);
    });
    Fixture {
        name: "np003_live_preload",
        expect: &[],
        perf: true,
        kernel: kb.finish(),
    }
}

/// NP004: a critical section entered on every one of 64 iterations by all
/// 4 threads — 256 serialized semaphore round-trips (Amdahl's serial term
/// grows with thread count).
fn np004_critical_in_loop() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np004_critical_loop", 4);
    let acc = kb.buffer("ACC", ScalarType::F32, MapDir::ToFrom);
    let n = kb.c_i64(64);
    kb.for_range("r", n, |kb, _r| {
        kb.critical(|kb| {
            let zero = kb.c_i64(0);
            let cur = kb.load(acc, zero, Type::F32);
            let one = kb.c_f32(1.0);
            let next = kb.add(cur, one);
            kb.store(acc, zero, next);
        });
    });
    Fixture {
        name: "np004_critical_loop",
        expect: &["NP004"],
        perf: true,
        kernel: kb.finish(),
    }
}

/// Near-miss: each thread accumulates privately and enters the critical
/// section exactly once to merge — the serial term is constant in the
/// trip count.
fn np004_critical_once() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np004_critical_once", 4);
    let acc = kb.buffer("ACC", ScalarType::F32, MapDir::ToFrom);
    let part = kb.var("part", Type::I64);
    let zero = kb.c_i64(0);
    kb.set(part, zero);
    let n = kb.c_i64(32);
    kb.for_range("r", n, |kb, r| {
        let cur = kb.get(part);
        let next = kb.add(cur, r);
        kb.set(part, next);
    });
    kb.critical(|kb| {
        let zero2 = kb.c_i64(0);
        let cur = kb.load(acc, zero2, Type::F32);
        let p = kb.get(part);
        let pf = kb.cast(ScalarType::F32, p);
        let next = kb.add(cur, pf);
        kb.store(acc, zero2, next);
    });
    Fixture {
        name: "np004_critical_once",
        expect: &[],
        perf: true,
        kernel: kb.finish(),
    }
}

/// NP005: thread 1's loop runs twice as long as thread 0's, and both meet
/// at a barrier — half the machine idles.
fn np005_imbalanced_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np005_imbalanced", 2);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let part = kb.var("part", Type::I64);
    let zero = kb.c_i64(0);
    kb.set(part, zero);
    let tid = kb.thread_id();
    let one = kb.c_i64(1);
    let t1 = kb.add(tid, one);
    let n = kb.c_i64(256);
    let end = kb.mul(t1, n);
    let start = kb.c_i64(0);
    let step = kb.c_i64(1);
    kb.for_each("i", start, end, step, |kb, i| {
        let cur = kb.get(part);
        let next = kb.add(cur, i);
        kb.set(part, next);
    });
    kb.barrier();
    let tid2 = kb.thread_id();
    let p = kb.get(part);
    let pf = kb.cast(ScalarType::F32, p);
    kb.store(c, tid2, pf);
    Fixture {
        name: "np005_imbalanced",
        expect: &["NP005"],
        perf: true,
        kernel: kb.finish(),
    }
}

/// Near-miss: both threads run the same trip count into the same barrier.
fn np005_balanced_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_np005_balanced", 2);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let part = kb.var("part", Type::I64);
    let zero = kb.c_i64(0);
    kb.set(part, zero);
    let n = kb.c_i64(256);
    let start = kb.c_i64(0);
    let step = kb.c_i64(1);
    kb.for_each("i", start, n, step, |kb, i| {
        let cur = kb.get(part);
        let next = kb.add(cur, i);
        kb.set(part, next);
    });
    kb.barrier();
    let tid = kb.thread_id();
    let p = kb.get(part);
    let pf = kb.cast(ScalarType::F32, p);
    kb.store(c, tid, pf);
    Fixture {
        name: "np005_balanced",
        expect: &[],
        perf: true,
        kernel: kb.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid_and_partition() {
        let all = all();
        assert_eq!(all.len(), 24);
        assert_eq!(buggy().len(), 12);
        assert_eq!(near_misses().len(), 12);
        // NL002 has a second trigger (the tid-uniform near-miss regression
        // pair); every other code has exactly one.
        for (code, n) in [
            ("NL001", 1),
            ("NL002", 2),
            ("NL003", 1),
            ("NL004", 1),
            ("NL005", 1),
            ("NL006", 1),
            ("NP001", 1),
            ("NP002", 1),
            ("NP003", 1),
            ("NP004", 1),
            ("NP005", 1),
        ] {
            assert_eq!(
                buggy().iter().filter(|f| f.expect.contains(&code)).count(),
                n,
                "{n} fixture(s) trigger {code}"
            );
        }
        // Perf fixtures pair up too: 5 triggering + 5 near-miss.
        assert_eq!(all.iter().filter(|f| f.perf).count(), 10);
        assert_eq!(
            all.iter()
                .filter(|f| f.perf && !f.expect.is_empty())
                .count(),
            5
        );
        // Names are unique.
        let mut names: Vec<_> = all.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }
}
