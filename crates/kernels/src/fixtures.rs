//! Lint fixtures: for every `nymble-lint` diagnostic code, one minimal
//! kernel that triggers it and one *near-miss* kernel that looks similar
//! but is clean (e.g. the same reduction guarded by `critical`).
//!
//! The fixtures double as dynamic-oracle subjects: they are valid,
//! executable kernels, so the IR interpreter can reproduce the flagged
//! behavior (an observed race for NL001, divergent barrier arrival counts
//! for NL002) while the near-misses run clean.

use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type};

/// One lint fixture: the kernel plus the diagnostic codes it must produce
/// (`expect` is empty for near-miss fixtures, which must lint clean).
pub struct Fixture {
    pub name: &'static str,
    /// Expected `nymble-lint` codes, as stable strings ("NL001"…).
    pub expect: &'static [&'static str],
    pub kernel: Kernel,
}

/// Every fixture, buggy and near-miss, in code order.
pub fn all() -> Vec<Fixture> {
    vec![
        nl001_race(),
        nl001_disjoint(),
        nl002_divergent_barrier(),
        nl002_uniform_barrier(),
        nl003_lost_update(),
        nl003_critical_reduction(),
        nl004_oob(),
        nl004_inbounds(),
        nl005_dead_to(),
        nl005_used_to(),
        nl006_dead_from(),
        nl006_written_from(),
    ]
}

/// Fixtures that must produce diagnostics.
pub fn buggy() -> Vec<Fixture> {
    all().into_iter().filter(|f| !f.expect.is_empty()).collect()
}

/// Near-miss fixtures that must lint clean.
pub fn near_misses() -> Vec<Fixture> {
    all().into_iter().filter(|f| f.expect.is_empty()).collect()
}

/// NL001: both threads write the full `OUT[0..8)` range — every element is
/// a write/write race.
fn nl001_race() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl001_race", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let n = kb.c_i64(8);
    kb.for_range("i", n, |kb, i| {
        let tid = kb.thread_id();
        let v = kb.cast(ScalarType::F32, tid);
        kb.store(out, i, v);
    });
    Fixture {
        name: "nl001_race",
        expect: &["NL001"],
        kernel: kb.finish(),
    }
}

/// Near-miss: the same loop, decomposed `i = tid, tid+NT, …` — the write
/// sets fall in different residue classes mod `num_threads`.
fn nl001_disjoint() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl001_disjoint", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let t = kb.thread_id();
        let v = kb.cast(ScalarType::F32, t);
        kb.store(out, i, v);
    });
    Fixture {
        name: "nl001_disjoint",
        expect: &[],
        kernel: kb.finish(),
    }
}

/// NL002: only thread 0 reaches the barrier — the other threads never
/// arrive, so in hardware thread 0 waits forever.
fn nl002_divergent_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl002_divergent", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let one = kb.c_f32(1.0);
        kb.store(out, i, one);
    });
    let tid2 = kb.thread_id();
    let zero = kb.c_i64(0);
    let is_zero = kb.bin(nymble_ir::BinOp::Eq, tid2, zero);
    kb.if_then(is_zero, |kb| kb.barrier());
    Fixture {
        name: "nl002_divergent",
        expect: &["NL002"],
        kernel: kb.finish(),
    }
}

/// Near-miss: the barrier is conditional, but on a *uniform* launch scalar
/// — every thread takes the same branch.
fn nl002_uniform_barrier() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl002_uniform", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let flag = kb.scalar_arg("FLAG", ScalarType::I64);
    let tid = kb.thread_id();
    let nt = kb.num_threads_expr();
    let n = kb.c_i64(8);
    kb.for_each("i", tid, n, nt, |kb, i| {
        let one = kb.c_f32(1.0);
        kb.store(out, i, one);
    });
    let f = kb.arg(flag);
    let zero = kb.c_i64(0);
    let cond = kb.bin(nymble_ir::BinOp::Gt, f, zero);
    kb.if_then(cond, |kb| kb.barrier());
    Fixture {
        name: "nl002_uniform",
        expect: &[],
        kernel: kb.finish(),
    }
}

/// NL003: the classic unguarded reduction — every thread repeatedly does
/// `ACC[0] = ACC[0] + 1` without synchronization, losing updates.
fn nl003_lost_update() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl003_lost_update", 2);
    let acc = kb.buffer("ACC", ScalarType::F32, MapDir::ToFrom);
    let n = kb.c_i64(4);
    kb.for_range("r", n, |kb, _r| {
        let zero = kb.c_i64(0);
        let cur = kb.load(acc, zero, Type::F32);
        let one = kb.c_f32(1.0);
        let next = kb.add(cur, one);
        kb.store(acc, zero, next);
    });
    Fixture {
        name: "nl003_lost_update",
        expect: &["NL003"],
        kernel: kb.finish(),
    }
}

/// Near-miss: the same reduction guarded by `critical` — serialized, clean.
fn nl003_critical_reduction() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl003_critical", 2);
    let acc = kb.buffer("ACC", ScalarType::F32, MapDir::ToFrom);
    let n = kb.c_i64(4);
    kb.for_range("r", n, |kb, _r| {
        kb.critical(|kb| {
            let zero = kb.c_i64(0);
            let cur = kb.load(acc, zero, Type::F32);
            let one = kb.c_f32(1.0);
            let next = kb.add(cur, one);
            kb.store(acc, zero, next);
        });
    });
    Fixture {
        name: "nl003_critical",
        expect: &[],
        kernel: kb.finish(),
    }
}

/// NL004: a local memory of 8 elements indexed `0..9` — iteration 8 is a
/// proven out-of-bounds store.
fn nl004_oob() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl004_oob", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let scratch = kb.local_mem("SCRATCH", Type::F32, 8);
    let n = kb.c_i64(9);
    kb.for_range("i", n, |kb, i| {
        let zero = kb.c_f32(0.0);
        kb.store_local(scratch, i, zero);
    });
    let tid = kb.thread_id();
    let v = kb.load_local(scratch, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl004_oob",
        expect: &["NL004"],
        kernel: kb.finish(),
    }
}

/// Near-miss: the same loop with the correct `0..8` bound.
fn nl004_inbounds() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl004_inbounds", 2);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let scratch = kb.local_mem("SCRATCH", Type::F32, 8);
    let n = kb.c_i64(8);
    kb.for_range("i", n, |kb, i| {
        let zero = kb.c_f32(0.0);
        kb.store_local(scratch, i, zero);
    });
    let tid = kb.thread_id();
    let v = kb.load_local(scratch, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl004_inbounds",
        expect: &[],
        kernel: kb.finish(),
    }
}

/// NL005: `map(to: A)` copies A to the accelerator, but the kernel never
/// reads it.
fn nl005_dead_to() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl005_dead_to", 2);
    let _a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let one = kb.c_f32(1.0);
    kb.store(out, tid, one);
    Fixture {
        name: "nl005_dead_to",
        expect: &["NL005"],
        kernel: kb.finish(),
    }
}

/// Near-miss: A is actually read.
fn nl005_used_to() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl005_used_to", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let v = kb.load(a, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl005_used_to",
        expect: &[],
        kernel: kb.finish(),
    }
}

/// NL006: `map(from: OUT)` copies OUT back, but the kernel never writes it
/// — the host reads back garbage.
fn nl006_dead_from() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl006_dead_from", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let res = kb.buffer("RES", ScalarType::F32, MapDir::From);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let v = kb.load(a, tid, Type::F32);
    kb.store(res, tid, v);
    let _ = out;
    Fixture {
        name: "nl006_dead_from",
        expect: &["NL006"],
        kernel: kb.finish(),
    }
}

/// Near-miss: OUT is written.
fn nl006_written_from() -> Fixture {
    let mut kb = KernelBuilder::new("fixture_nl006_written_from", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let tid = kb.thread_id();
    let v = kb.load(a, tid, Type::F32);
    kb.store(out, tid, v);
    Fixture {
        name: "nl006_written_from",
        expect: &[],
        kernel: kb.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid_and_partition() {
        let all = all();
        assert_eq!(all.len(), 12);
        assert_eq!(buggy().len(), 6);
        assert_eq!(near_misses().len(), 6);
        // One triggering + one near-miss fixture per code.
        for code in ["NL001", "NL002", "NL003", "NL004", "NL005", "NL006"] {
            assert_eq!(
                buggy().iter().filter(|f| f.expect.contains(&code)).count(),
                1,
                "exactly one fixture triggers {code}"
            );
        }
        // Names are unique.
        let mut names: Vec<_> = all.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}
