//! # kernels — the paper's case-study applications
//!
//! The OpenMP-annotated C kernels of the paper's evaluation (§V), expressed
//! through the `nymble-ir` builder API:
//!
//! * [`gemm`] — the five GEMM optimization steps of §V-C: naive with a
//!   critical section (Fig. 3), *No Critical Sections*, *Partial
//!   Vectorization* (Fig. 4), *Blocked*, and *double-buffering* (Fig. 5),
//! * [`pi`] — the infinite-series π kernel of §V-D (Fig. 10),
//! * [`extra`] — auxiliary workloads (vector add, dot product, Jacobi
//!   stencil) used by examples and the profiling-overhead sweep,
//! * [`spmv`] — CSR sparse matrix–vector product (indirect/gather accesses),
//! * [`reduction`] — barrier-phased tree reduction,
//! * [`mod@reference`] — CPU gold implementations every kernel is verified
//!   against,
//! * [`fixtures`] — minimal triggering and near-miss kernels for every
//!   `nymble-lint` diagnostic code (NL001–NL006).

pub mod extra;
pub mod fixtures;
pub mod gemm;
pub mod pi;
pub mod reduction;
pub mod reference;
pub mod spmv;
