//! CPU gold implementations and deterministic input generation.

/// Deterministic pseudo-random matrix in [-1, 1], seeded (xorshift64*; no
/// external RNG dependency so kernels stay reproducible byte-for-byte).
pub fn gen_matrix(dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..dim * dim)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let r = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            ((r >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Row-major single-precision GEMM: `C = A × B`.
pub fn gemm(a: &[f32], b: &[f32], dim: usize) -> Vec<f32> {
    assert_eq!(a.len(), dim * dim);
    assert_eq!(b.len(), dim * dim);
    let mut c = vec![0.0f32; dim * dim];
    for i in 0..dim {
        for k in 0..dim {
            let av = a[i * dim + k];
            for j in 0..dim {
                c[i * dim + j] += av * b[k * dim + j];
            }
        }
    }
    c
}

/// The π series of Fig. 10 evaluated in f32, mirroring the kernel's
/// per-thread, per-lane accumulation order so results match bit-for-bit
/// under the same schedule. `bs` is the unroll factor (`BS_compute`).
pub fn pi_series(steps: u64, threads: u32, bs: u32) -> f32 {
    let step = 1.0f32 / steps as f32;
    let per_thread = steps / threads as u64;
    let mut final_sum = 0.0f32;
    for t in 0..threads as u64 {
        let start_i = t * per_thread;
        let mut lane_sums = vec![0.0f32; bs as usize];
        let mut i = 0u64;
        while i < per_thread {
            for j in 0..bs as u64 {
                let x = ((i + start_i + j) as f32 + 0.5) * step;
                lane_sums[j as usize] += 4.0 / (1.0 + x * x);
            }
            i += bs as u64;
        }
        for l in lane_sums {
            final_sum += l;
        }
    }
    // The kernel accumulates the raw series; the host applies the final
    // `step` scaling (the listing in Fig. 10 leaves it to the caller).
    final_sum * step
}

/// Flops per π-series iteration as counted by the profiling unit (used to
/// convert counts into the paper's GFLOP/s).
pub const PI_FLOPS_PER_ITER: u64 = 6;

/// Jacobi 4-point stencil reference (one sweep, interior points).
pub fn jacobi_sweep(grid: &[f32], n: usize) -> Vec<f32> {
    assert_eq!(grid.len(), n * n);
    let mut out = grid.to_vec();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            out[i * n + j] = 0.25
                * (grid[(i - 1) * n + j]
                    + grid[(i + 1) * n + j]
                    + grid[i * n + j - 1]
                    + grid[i * n + j + 1]);
        }
    }
    out
}

/// Dot product reference.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_matrix_is_deterministic_and_bounded() {
        let m1 = gen_matrix(8, 42);
        let m2 = gen_matrix(8, 42);
        assert_eq!(m1, m2);
        assert!(m1.iter().all(|v| (-1.0..=1.0).contains(v)));
        let m3 = gen_matrix(8, 43);
        assert_ne!(m1, m3);
    }

    #[test]
    fn gemm_identity() {
        let dim = 4;
        let mut ident = vec![0.0f32; dim * dim];
        for i in 0..dim {
            ident[i * dim + i] = 1.0;
        }
        let a = gen_matrix(dim, 7);
        assert_eq!(gemm(&a, &ident, dim), a);
    }

    #[test]
    fn pi_converges() {
        let p = pi_series(1_000_000, 8, 8);
        assert!((p - std::f32::consts::PI).abs() < 1e-3, "series gave {p}");
    }

    #[test]
    fn pi_f32_instability_at_large_counts() {
        // §V-D: "since we are using only single-precision computation,
        // further increasing the number of iterations results in numerical
        // instability." The per-lane partial sums grow until increments are
        // absorbed; error at 2^31 steps is visibly worse than at 10M.
        let good = (pi_series(10_000_000, 8, 8) - std::f32::consts::PI).abs();
        let bad = (pi_series(1 << 31, 8, 8) - std::f32::consts::PI).abs();
        assert!(bad > good, "expected instability: {bad} vs {good}");
    }

    #[test]
    fn jacobi_keeps_boundary() {
        let n = 6;
        let mut g = vec![0.0f32; n * n];
        g[0] = 9.0;
        let out = jacobi_sweep(&g, n);
        assert_eq!(out[0], 9.0, "boundary untouched");
    }

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
