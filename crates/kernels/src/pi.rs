//! The π infinite-series kernel of §V-D (Fig. 10).
//!
//! Each thread integrates `4/(1+x²)` over its contiguous slice of the step
//! range, with the inner loop unrolled `BS_compute` times into independent
//! per-lane accumulators, and finally reduces into `final_sum` inside a
//! critical section. The kernel stores the raw series sum; the host applies
//! the `step` scaling.
//!
//! This kernel's interesting behaviour is *scaling*, not memory: with the
//! host starting threads one after another (the simulator's
//! `launch_interval`), small iteration counts never reach full parallelism —
//! the Paraver state views of Figs. 11–13.

use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type};

/// Parameters of the π kernel.
#[derive(Clone, Copy, Debug)]
pub struct PiParams {
    /// Total series iterations (1M / 4M / 10M in Figs. 11–13).
    pub steps: u64,
    /// Hardware threads (8 in the paper).
    pub threads: u32,
    /// `BS_compute` unroll factor.
    pub bs: u32,
}

impl Default for PiParams {
    fn default() -> Self {
        PiParams {
            steps: 1_000_000,
            threads: 8,
            bs: 8,
        }
    }
}

impl PiParams {
    /// Flops the profiling unit counts per series iteration.
    pub fn flops_per_iter(&self) -> u64 {
        crate::reference::PI_FLOPS_PER_ITER
    }
}

/// Build the π kernel. Arguments: `STEP` (f32 scalar), `STEPS_PER_THREAD`
/// (i64 scalar) and `FINAL_SUM` (1-element f32 `tofrom` buffer).
pub fn build(p: &PiParams) -> Kernel {
    assert!(p.bs >= 1);
    assert_eq!(
        p.steps % (p.threads as u64 * p.bs as u64),
        0,
        "steps must divide evenly over threads × BS_compute"
    );
    let mut kb = KernelBuilder::new("pi", p.threads);
    let step_arg = kb.scalar_arg("STEP", ScalarType::F32);
    let spt_arg = kb.scalar_arg("STEPS_PER_THREAD", ScalarType::I64);
    let final_sum = kb.buffer("FINAL_SUM", ScalarType::F32, MapDir::ToFrom);

    // int step_per_thread = steps / num_threads;
    // int start_i = thread_num * step_per_thread;
    let spt = kb.arg(spt_arg);
    let tid = kb.thread_id();
    let tid64 = kb.cast(ScalarType::I64, tid);
    let start_i = kb.mul(tid64, spt);

    // VECTOR sum = {0.0f}: BS_compute independent accumulators.
    let sums: Vec<_> = (0..p.bs)
        .map(|l| kb.var(&format!("sum{l}"), Type::F32))
        .collect();
    for &s in &sums {
        let z = kb.c_f32(0.0);
        kb.set(s, z);
    }
    // DTYPE local_step = step;
    let local_step = kb.var("local_step", Type::F32);
    let st = kb.arg(step_arg);
    kb.set(local_step, st);

    let zero = kb.c_i64(0);
    let end = kb.arg(spt_arg);
    let bs_step = kb.c_i64(p.bs as i64);
    kb.for_each("i", zero, end, bs_step, |kb, i| {
        for (j, &sum) in sums.iter().enumerate() {
            // x = ((DTYPE)(i + start_i + j) + 0.5f) * local_step;
            let base = kb.add(i, start_i);
            let joff = kb.c_i64(j as i64);
            let idx = kb.add(base, joff);
            let xf = kb.cast(ScalarType::F32, idx);
            let half = kb.c_f32(0.5);
            let xh = kb.add(xf, half);
            let ls = kb.get(local_step);
            let x = kb.mul(xh, ls);
            // sum[j] += 4.0f / (1.0f + x*x);
            let xx = kb.mul(x, x);
            let one = kb.c_f32(1.0);
            let den = kb.add(one, xx);
            let four = kb.c_f32(4.0);
            let term = kb.div(four, den);
            let cur = kb.get(sum);
            let acc = kb.add(cur, term);
            kb.set(sum, acc);
        }
    });

    // #pragma omp critical: final_sum += sum[i] for all lanes.
    kb.critical(|kb| {
        let zero = kb.c_i64(0);
        let mut cur = kb.load(final_sum, zero, Type::F32);
        for &s in &sums {
            let sv = kb.get(s);
            cur = kb.add(cur, sv);
        }
        let zero2 = kb.c_i64(0);
        kb.store(final_sum, zero2, cur);
    });
    kb.finish()
}

/// Launch scalar values for the kernel: `(STEP, STEPS_PER_THREAD)`.
pub fn launch_scalars(p: &PiParams) -> (f32, i64) {
    (1.0f32 / p.steps as f32, (p.steps / p.threads as u64) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg};
    use nymble_ir::Value;

    #[test]
    fn matches_reference_series() {
        let p = PiParams {
            steps: 64_000,
            threads: 4,
            bs: 8,
        };
        let k = build(&p);
        let (step, spt) = launch_scalars(&p);
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Scalar(Value::F32(step)),
                LaunchArg::Scalar(Value::I64(spt)),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ],
        );
        let raw = buffer_as_f32(&r.buffers[2])[0];
        let got = raw * step;
        let expect = reference::pi_series(p.steps, p.threads, p.bs);
        assert!(
            (got - expect).abs() < 1e-4,
            "kernel {got} vs reference {expect}"
        );
        assert!(
            (got - std::f32::consts::PI).abs() < 1e-2,
            "π estimate {got}"
        );
        // One critical entry per thread (the final reduction).
        assert_eq!(r.critical_entries, p.threads as u64);
    }

    #[test]
    fn flop_count_tracks_iterations() {
        let p = PiParams {
            steps: 8_000,
            threads: 2,
            bs: 4,
        };
        let k = build(&p);
        let (step, spt) = launch_scalars(&p);
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Scalar(Value::F32(step)),
                LaunchArg::Scalar(Value::I64(spt)),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ],
        );
        // 6 flops per iteration (add-half, ×step, x², 1+, 4/, accumulate)
        // plus the final per-lane reduction adds.
        let expected = p.steps * reference::PI_FLOPS_PER_ITER;
        let slack = (p.threads * p.bs + p.threads) as u64 + 4;
        assert!(
            r.ops.flops >= expected && r.ops.flops <= expected + slack,
            "flops {} vs expected ~{expected}",
            r.ops.flops
        );
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_ragged_division() {
        let _ = build(&PiParams {
            steps: 1000,
            threads: 3,
            bs: 8,
        });
    }
}
