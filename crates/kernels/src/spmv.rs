//! Sparse matrix–vector product (CSR) — an irregular-access workload that
//! exercises the IR's indirect addressing (a loaded value feeding another
//! load's index) and shows the latency-bound end of the paper's bottleneck
//! spectrum: gather accesses defeat both the line buffers and vectorization.

use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type};

/// A CSR matrix with f32 values.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    pub rows: usize,
    pub cols: usize,
    /// Row start offsets, `rows + 1` entries.
    pub row_ptr: Vec<i64>,
    /// Column index per non-zero.
    pub col_idx: Vec<i64>,
    /// Value per non-zero.
    pub values: Vec<f32>,
}

impl Csr {
    /// Deterministic pseudo-random sparse matrix with ~`nnz_per_row`
    /// non-zeros per row.
    pub fn random(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> Self {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rng = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for _ in 0..rows {
            let mut cols_here: Vec<i64> = (0..nnz_per_row)
                .map(|_| (rng() % cols as u64) as i64)
                .collect();
            cols_here.sort_unstable();
            cols_here.dedup();
            for c in cols_here {
                col_idx.push(c);
                values.push(((rng() >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0);
            }
            row_ptr.push(col_idx.len() as i64);
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// CPU reference `y = A·x`.
    pub fn spmv_ref(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0f32;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        }
        y
    }
}

/// Build the SpMV kernel: rows striped over threads; per row, a
/// variable-trip inner loop gathers `x[col_idx[k]]`.
///
/// Arguments: `ROW_PTR` (i64), `COL_IDX` (i64), `VALS` (f32), `X` (f32),
/// `Y` (f32, from). The row count is baked into the IR.
pub fn build(rows: i64, threads: u32) -> Kernel {
    let mut kb = KernelBuilder::new("spmv", threads);
    let row_ptr = kb.buffer("ROW_PTR", ScalarType::I64, MapDir::To);
    let col_idx = kb.buffer("COL_IDX", ScalarType::I64, MapDir::To);
    let vals = kb.buffer("VALS", ScalarType::F32, MapDir::To);
    let x = kb.buffer("X", ScalarType::F32, MapDir::To);
    let y = kb.buffer("Y", ScalarType::F32, MapDir::From);
    let acc = kb.var("acc", Type::F32);

    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let end = kb.c_i64(rows);
    kb.for_each("r", my, end, nt64, |kb, r| {
        let z = kb.c_f32(0.0);
        kb.set(acc, z);
        // Row bounds come from memory: a variable-trip inner loop.
        let lo = kb.load(row_ptr, r, Type::I64);
        let one = kb.c_i64(1);
        let r1 = kb.add(r, one);
        let hi = kb.load(row_ptr, r1, Type::I64);
        let step = kb.c_i64(1);
        kb.for_each("k", lo, hi, step, |kb, k| {
            let c = kb.load(col_idx, k, Type::I64);
            let v = kb.load(vals, k, Type::F32);
            let xv = kb.load(x, c, Type::F32); // gather: index from memory
            let cur = kb.get(acc);
            let s = kb.mul_add(v, xv, cur);
            kb.set(acc, s);
        });
        let a = kb.get(acc);
        kb.store(y, r, a);
    });
    kb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg};
    use nymble_ir::Value;

    #[test]
    fn spmv_matches_reference() {
        let m = Csr::random(24, 24, 5, 3);
        let x: Vec<f32> = (0..24).map(|i| (i as f32 * 0.3).sin()).collect();
        let gold = m.spmv_ref(&x);
        let k = build(m.rows as i64, 3);
        let i64v = |v: &[i64]| v.iter().map(|&x| Value::I64(x)).collect::<Vec<_>>();
        let f32v = |v: &[f32]| v.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(i64v(&m.row_ptr)),
                LaunchArg::Buffer(i64v(&m.col_idx)),
                LaunchArg::Buffer(f32v(&m.values)),
                LaunchArg::Buffer(f32v(&x)),
                LaunchArg::Buffer(vec![Value::F32(0.0); m.rows]),
            ],
        );
        let got = buffer_as_f32(&r.buffers[4]);
        for (i, (g, e)) in got.iter().zip(&gold).enumerate() {
            assert!((g - e).abs() < 1e-4, "row {i}: {g} vs {e}");
        }
    }

    #[test]
    fn random_csr_is_wellformed() {
        let m = Csr::random(10, 16, 4, 7);
        assert_eq!(m.row_ptr.len(), 11);
        assert_eq!(m.col_idx.len(), m.values.len());
        assert!(m.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert!(m.col_idx.iter().all(|&c| (c as usize) < m.cols));
        // Deterministic.
        assert_eq!(m, Csr::random(10, 16, 4, 7));
    }

    #[test]
    fn empty_rows_are_fine() {
        // A matrix where dedup may produce short rows; also rows=1 edge.
        let m = Csr::random(1, 4, 2, 1);
        let x = vec![1.0f32; 4];
        let k = build(1, 1);
        let i64v = |v: &[i64]| v.iter().map(|&x| Value::I64(x)).collect::<Vec<_>>();
        let f32v = |v: &[f32]| v.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(i64v(&m.row_ptr)),
                LaunchArg::Buffer(i64v(&m.col_idx)),
                LaunchArg::Buffer(f32v(&m.values)),
                LaunchArg::Buffer(f32v(&x)),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ],
        );
        let got = buffer_as_f32(&r.buffers[4])[0];
        let expect = m.spmv_ref(&x)[0];
        assert!((got - expect).abs() < 1e-5);
    }
}
