//! The five GEMM versions of the paper's §V-C case study.
//!
//! All versions compute `C = A × B` on `DIM×DIM` single-precision matrices
//! with `num_threads` hardware threads.
//!
//! Fidelity notes versus the paper's listings:
//!
//! * Fig. 3 writes `C[i*DIM+j] = sum` inside the critical section, which —
//!   with every thread holding only a partial `k`-slice sum — does not
//!   compute a matrix product. We implement the evident intent,
//!   `C[i*DIM+j] += sum`, so all five versions are functionally equivalent
//!   and verifiable against the CPU reference.
//! * `#pragma unroll` loops are unrolled at kernel-construction time (the
//!   builder emits the replicated body with distinct accumulators), which is
//!   what the HLS compiler's frontend would do and gives the scheduler the
//!   same dataflow graph.
//! * The blocked/double-buffered versions use the architecture's preloader
//!   (§III-A) for their block transfers; the paper's equivalent inner copy
//!   loops are recognised by Nymble and mapped to the same engine.

use nymble_ir::{BinOp, Kernel, KernelBuilder, MapDir, ScalarType, Type};

/// Parameters shared by all GEMM versions.
#[derive(Clone, Copy, Debug)]
pub struct GemmParams {
    /// Matrix dimension (the paper evaluates 512; scaled-down runs are the
    /// default for CI speed).
    pub dim: i64,
    /// Hardware threads (the paper uses 8 throughout).
    pub threads: u32,
    /// Vector width in f32 lanes (the paper's 128-bit `VECTOR` = 4).
    pub vec: u8,
    /// Block edge for the blocked/double-buffered versions.
    pub block: i64,
}

impl Default for GemmParams {
    fn default() -> Self {
        GemmParams {
            dim: 128,
            threads: 8,
            vec: 4,
            block: 8,
        }
    }
}

impl GemmParams {
    /// Paper-scale configuration (512×512, 8 threads).
    pub fn paper_scale() -> Self {
        GemmParams {
            dim: 512,
            ..Default::default()
        }
    }

    fn validate(&self) {
        assert!(self.dim > 0 && self.threads > 0);
        assert!(
            self.dim % (self.vec as i64) == 0,
            "DIM must be a multiple of the vector width"
        );
        assert!(
            self.block % (self.vec as i64) == 0 && self.dim % self.block == 0,
            "block must divide DIM and be a multiple of the vector width"
        );
        assert!(
            self.dim % (self.threads as i64 * self.block) == 0
                || self.dim % self.threads as i64 == 0,
            "threads must evenly divide the iteration space"
        );
    }
}

/// The five optimization steps of §V-C, in paper order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GemmVersion {
    /// Fig. 3: threads split the `k` loop, reduction guarded by a critical
    /// section.
    Naive,
    /// Step 2: threads own disjoint `i` rows; no critical section.
    NoCritical,
    /// Fig. 4: step 2 plus 128-bit vectorized loads of `A`.
    Vectorized,
    /// Step 4: blocking into local (BRAM) memories via the preloader.
    Blocked,
    /// Fig. 5: blocking plus double-buffered prefetch of the next block.
    DoubleBuffered,
}

impl GemmVersion {
    /// All versions in the paper's presentation order.
    pub const ALL: [GemmVersion; 5] = [
        GemmVersion::Naive,
        GemmVersion::NoCritical,
        GemmVersion::Vectorized,
        GemmVersion::Blocked,
        GemmVersion::DoubleBuffered,
    ];

    /// Display name as used in the paper's Fig. 7 legend.
    pub fn name(&self) -> &'static str {
        match self {
            GemmVersion::Naive => "Naive",
            GemmVersion::NoCritical => "No Critical Sections",
            GemmVersion::Vectorized => "Partial Vectorization",
            GemmVersion::Blocked => "Blocked",
            GemmVersion::DoubleBuffered => "Double Buffering",
        }
    }
}

/// Build the kernel for one GEMM version.
pub fn build(version: GemmVersion, p: &GemmParams) -> Kernel {
    p.validate();
    match version {
        GemmVersion::Naive => naive(p),
        GemmVersion::NoCritical => no_critical(p),
        GemmVersion::Vectorized => vectorized(p),
        GemmVersion::Blocked => blocked(p, false),
        GemmVersion::DoubleBuffered => blocked(p, true),
    }
}

fn naive(p: &GemmParams) -> Kernel {
    let mut kb = KernelBuilder::new("gemm_naive", p.threads);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let b = kb.buffer("B", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
    let sum = kb.var("sum", Type::F32);
    let dim = kb.c_i64(p.dim);
    kb.for_range("i", dim, |kb, i| {
        let dim_j = kb.c_i64(p.dim);
        kb.for_range("j", dim_j, |kb, j| {
            let z = kb.c_f32(0.0);
            kb.set(sum, z);
            let tid = kb.thread_id();
            let my = kb.cast(ScalarType::I64, tid);
            let nt = kb.num_threads_expr();
            let nt64 = kb.cast(ScalarType::I64, nt);
            let end = kb.c_i64(p.dim);
            kb.for_each("k", my, end, nt64, |kb, k| {
                let dim_e = kb.c_i64(p.dim);
                let row = kb.mul(i, dim_e);
                let ai = kb.add(row, k);
                let av = kb.load(a, ai, Type::F32);
                let dim_e2 = kb.c_i64(p.dim);
                let krow = kb.mul(k, dim_e2);
                let bi = kb.add(krow, j);
                let bv = kb.load(b, bi, Type::F32);
                let cur = kb.get(sum);
                let s = kb.mul_add(av, bv, cur);
                kb.set(sum, s);
            });
            kb.critical(|kb| {
                let dim_e = kb.c_i64(p.dim);
                let row = kb.mul(i, dim_e);
                let ci = kb.add(row, j);
                let cur = kb.load(c, ci, Type::F32);
                let sv = kb.get(sum);
                let upd = kb.add(cur, sv);
                kb.store(c, ci, upd);
            });
        });
    });
    kb.finish()
}

fn no_critical(p: &GemmParams) -> Kernel {
    let mut kb = KernelBuilder::new("gemm_nocrit", p.threads);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let b = kb.buffer("B", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    let sum = kb.var("sum", Type::F32);
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let dim = kb.c_i64(p.dim);
    kb.for_each("i", my, dim, nt64, |kb, i| {
        let dim_j = kb.c_i64(p.dim);
        kb.for_range("j", dim_j, |kb, j| {
            let z = kb.c_f32(0.0);
            kb.set(sum, z);
            let dim_k = kb.c_i64(p.dim);
            kb.for_range("k", dim_k, |kb, k| {
                let dim_e = kb.c_i64(p.dim);
                let row = kb.mul(i, dim_e);
                let ai = kb.add(row, k);
                let av = kb.load(a, ai, Type::F32);
                let dim_e2 = kb.c_i64(p.dim);
                let krow = kb.mul(k, dim_e2);
                let bi = kb.add(krow, j);
                let bv = kb.load(b, bi, Type::F32);
                let cur = kb.get(sum);
                let s = kb.mul_add(av, bv, cur);
                kb.set(sum, s);
            });
            let dim_e = kb.c_i64(p.dim);
            let row = kb.mul(i, dim_e);
            let ci = kb.add(row, j);
            let sv = kb.get(sum);
            kb.store(c, ci, sv);
        });
    });
    kb.finish()
}

fn vectorized(p: &GemmParams) -> Kernel {
    let vl = p.vec;
    let vty = Type::vector(ScalarType::F32, vl);
    let mut kb = KernelBuilder::new("gemm_vec", p.threads);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let b = kb.buffer("B", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    // One accumulator per lane: the `#pragma unroll VECTOR_LEN` of Fig. 4
    // gives each unrolled instance an independent dependence chain.
    let sums: Vec<_> = (0..vl)
        .map(|l| kb.var(&format!("sum{l}"), Type::F32))
        .collect();
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let dim = kb.c_i64(p.dim);
    kb.for_each("i", my, dim, nt64, |kb, i| {
        let dim_j = kb.c_i64(p.dim);
        kb.for_range("j", dim_j, |kb, j| {
            for &s in &sums {
                let z = kb.c_f32(0.0);
                kb.set(s, z);
            }
            let zero = kb.c_i64(0);
            let dim_k = kb.c_i64(p.dim);
            let step = kb.c_i64(vl as i64);
            kb.for_each("k", zero, dim_k, step, |kb, k| {
                // VECTOR vA = *((VECTOR*)&A[i*DIM + k]);
                let dim_e = kb.c_i64(p.dim);
                let row = kb.mul(i, dim_e);
                let ai = kb.add(row, k);
                let va = kb.load(a, ai, vty);
                for l in 0..vl {
                    let lane = kb.lane(va, l);
                    let off = kb.c_i64(l as i64);
                    let kv = kb.add(k, off);
                    let dim_e2 = kb.c_i64(p.dim);
                    let krow = kb.mul(kv, dim_e2);
                    let bi = kb.add(krow, j);
                    let bv = kb.load(b, bi, Type::F32);
                    let cur = kb.get(sums[l as usize]);
                    let s = kb.mul_add(lane, bv, cur);
                    kb.set(sums[l as usize], s);
                }
            });
            // Reduce the lane partials and store.
            let mut acc = kb.get(sums[0]);
            for &s in &sums[1..] {
                let sv = kb.get(s);
                acc = kb.add(acc, sv);
            }
            let dim_e = kb.c_i64(p.dim);
            let row = kb.mul(i, dim_e);
            let ci = kb.add(row, j);
            kb.store(c, ci, acc);
        });
    });
    kb.finish()
}

/// Blocked GEMM; with `double_buffer` the next block pair is prefetched
/// while computing on the current one (Fig. 5).
fn blocked(p: &GemmParams, double_buffer: bool) -> Kernel {
    let bs = p.block;
    let vl = p.vec as i64;
    let vty = Type::vector(ScalarType::F32, p.vec);
    let name = if double_buffer {
        "gemm_dbuf"
    } else {
        "gemm_blocked"
    };
    let mut kb = KernelBuilder::new(name, p.threads);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let b = kb.buffer("B", ScalarType::F32, MapDir::To);
    let c = kb.buffer("C", ScalarType::F32, MapDir::From);
    // Local tiles. A is read a scalar at a time (broadcast against a B row
    // vector); B and C are vector-element tiles. Double buffering uses two
    // physical tile sets so the preloader can fill one while the datapath
    // reads the other.
    let n_bufs = if double_buffer { 2 } else { 1 };
    let a_loc: Vec<_> = (0..n_bufs)
        .map(|i| kb.local_mem(&format!("A_local{i}"), Type::F32, (bs * bs) as u64))
        .collect();
    let b_loc: Vec<_> = (0..n_bufs)
        .map(|i| kb.local_mem(&format!("B_local{i}"), Type::F32, (bs * bs) as u64))
        .collect();
    let c_loc = kb.local_mem("C_local", Type::F32, (bs * bs) as u64);

    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let bs_e = kb.c_i64(bs);
    let my_row = kb.mul(my, bs_e);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let bs_e2 = kb.c_i64(bs);
    let stride = kb.mul(nt64, bs_e2);
    let dim = kb.c_i64(p.dim);
    let nblocks = p.dim / bs;

    kb.for_each("ib", my_row, dim, stride, |kb, ib| {
        let dim_j = kb.c_i64(p.dim);
        let zero = kb.c_i64(0);
        let bs_step = kb.c_i64(bs);
        kb.for_each("jb", zero, dim_j, bs_step, |kb, jb| {
            // Zero the C tile.
            let tile_len = kb.c_i64(bs * bs);
            kb.for_range("z", tile_len, |kb, z| {
                let zf = kb.c_f32(0.0);
                kb.store_local(c_loc, z, zf);
            });

            // Loads a (A, B) tile pair into buffer set `which` with the
            // thread's own vectorized copy loop, as the paper's listings do
            // (Fig. 5 loads `A_local[...][m] = *((VECTOR*)&A[...])`).
            let copy_tiles = |kb: &mut KernelBuilder, which: usize, kb_e: nymble_ir::ExprId| {
                let rows = kb.c_i64(bs);
                kb.for_range("r", rows, |kb, r| {
                    // A row: BS scalars as BS/VL vector loads.
                    for cv in 0..(bs / vl) {
                        let row = kb.add(ib, r);
                        let dim_e = kb.c_i64(p.dim);
                        let rowd = kb.mul(row, dim_e);
                        let base = kb.add(rowd, kb_e);
                        let off = kb.c_i64(cv * vl);
                        let asrc = kb.add(base, off);
                        // Load once into a register, then scatter lanes
                        // (one vector load feeds four BRAM writes).
                        let av_tmp = kb.var("av_tmp", vty);
                        let av = kb.load(a, asrc, vty);
                        kb.set(av_tmp, av);
                        for l in 0..p.vec {
                            let avv = kb.get(av_tmp);
                            let lane = kb.lane(avv, l);
                            let bs_c = kb.c_i64(bs);
                            let adst0 = kb.mul(r, bs_c);
                            let lidx = kb.c_i64(cv * vl + l as i64);
                            let adst = kb.add(adst0, lidx);
                            kb.store_local(a_loc[which], adst, lane);
                        }
                        // Matching B row vector.
                        let brow = kb.add(kb_e, r);
                        let dim_e2 = kb.c_i64(p.dim);
                        let browd = kb.mul(brow, dim_e2);
                        let bbase = kb.add(browd, jb);
                        let boff = kb.c_i64(cv * vl);
                        let bsrc = kb.add(bbase, boff);
                        let bv_tmp = kb.var("bv_tmp", vty);
                        let bv = kb.load(b, bsrc, vty);
                        kb.set(bv_tmp, bv);
                        for l in 0..p.vec {
                            let bvv = kb.get(bv_tmp);
                            let lane = kb.lane(bvv, l);
                            let bs_c2 = kb.c_i64(bs);
                            let bdst0 = kb.mul(r, bs_c2);
                            let lidx = kb.c_i64(cv * vl + l as i64);
                            let bdst = kb.add(bdst0, lidx);
                            kb.store_local(b_loc[which], bdst, lane);
                        }
                    }
                });
            };

            // Prefetches a tile pair through the preloader DMA (Fig. 1's
            // dedicated engine) — the double-buffered version's mechanism
            // for overlapping the next block's transfer with compute.
            let prefetch_tiles = |kb: &mut KernelBuilder, which: usize, kb_e: nymble_ir::ExprId| {
                let rows = kb.c_i64(bs);
                kb.for_range("r", rows, |kb, r| {
                    let row = kb.add(ib, r);
                    let dim_e = kb.c_i64(p.dim);
                    let rowd = kb.mul(row, dim_e);
                    let asrc = kb.add(rowd, kb_e);
                    let bs_c = kb.c_i64(bs);
                    let adst = kb.mul(r, bs_c);
                    let alen = kb.c_i64(bs);
                    kb.preload(a_loc[which], a, asrc, adst, alen);
                    let brow = kb.add(kb_e, r);
                    let dim_e2 = kb.c_i64(p.dim);
                    let browd = kb.mul(brow, dim_e2);
                    let bsrc = kb.add(browd, jb);
                    let bs_c2 = kb.c_i64(bs);
                    let bdst = kb.mul(r, bs_c2);
                    let blen = kb.c_i64(bs);
                    kb.preload(b_loc[which], b, bsrc, bdst, blen);
                });
            };

            // Computes the current (A, B) tiles from buffer set `which`
            // into the C tile. Two independent accumulators (2-way unroll
            // over k) halve the adder-recurrence bound.
            let compute_tiles = |kb: &mut KernelBuilder, which: usize| {
                let rows = kb.c_i64(bs);
                kb.for_range("x", rows, |kb, x| {
                    let cols = kb.c_i64(bs);
                    kb.for_range("y", cols, |kb, y| {
                        let bs_c0 = kb.c_i64(bs);
                        let cidx0 = kb.mul(x, bs_c0);
                        let cidx = kb.add(cidx0, y);
                        let acc0 = kb.var("acc0", Type::F32);
                        let acc1 = kb.var("acc1", Type::F32);
                        let z0 = kb.c_f32(0.0);
                        kb.set(acc0, z0);
                        let z1 = kb.c_f32(0.0);
                        kb.set(acc1, z1);
                        let zero_v = kb.c_i64(0);
                        let vs = kb.c_i64(bs);
                        let two = kb.c_i64(2);
                        kb.for_each("v", zero_v, vs, two, |kb, v| {
                            for u in 0..2i64 {
                                let uoff = kb.c_i64(u);
                                let vu = kb.add(v, uoff);
                                let bs_c = kb.c_i64(bs);
                                let aidx0 = kb.mul(x, bs_c);
                                let aidx = kb.add(aidx0, vu);
                                let av = kb.load_local(a_loc[which], aidx, Type::F32);
                                let bs_c2 = kb.c_i64(bs);
                                let bidx0 = kb.mul(vu, bs_c2);
                                let bidx = kb.add(bidx0, y);
                                let bv = kb.load_local(b_loc[which], bidx, Type::F32);
                                let acc = if u == 0 { acc0 } else { acc1 };
                                let cur = kb.get(acc);
                                let s = kb.mul_add(av, bv, cur);
                                kb.set(acc, s);
                            }
                        });
                        let a0 = kb.get(acc0);
                        let a1 = kb.get(acc1);
                        let part = kb.bin(BinOp::Add, a0, a1);
                        let cprev = kb.load_local(c_loc, cidx, Type::F32);
                        let upd = kb.add(cprev, part);
                        kb.store_local(c_loc, cidx, upd);
                    });
                });
            };

            if !double_buffer {
                let dim_k = kb.c_i64(p.dim);
                let zero2 = kb.c_i64(0);
                let bstep = kb.c_i64(bs);
                kb.for_each("kb", zero2, dim_k, bstep, |kb, kb_e| {
                    copy_tiles(kb, 0, kb_e);
                    compute_tiles(kb, 0);
                });
            } else {
                // One extra iteration: prefetch block kbi while computing
                // block kbi-1 (Fig. 5's buffer rotation, realised as two
                // physical tile sets selected by parity).
                let nb1 = kb.c_i64(nblocks + 1);
                let zero2 = kb.c_i64(0);
                let one = kb.c_i64(1);
                kb.for_each("kbi", zero2, nb1, one, |kb, kbi| {
                    let nb = kb.c_i64(nblocks);
                    let in_range = kb.bin(BinOp::Lt, kbi, nb);
                    let two = kb.c_i64(2);
                    let par = kb.bin(BinOp::Rem, kbi, two);
                    let zero3 = kb.c_i64(0);
                    let even = kb.bin(BinOp::Eq, par, zero3);
                    kb.if_then(in_range, |kb| {
                        let bs_c = kb.c_i64(bs);
                        let kb_e = kb.mul(kbi, bs_c);
                        kb.if_(
                            even,
                            |kb| prefetch_tiles(kb, 0, kb_e),
                            |kb| prefetch_tiles(kb, 1, kb_e),
                        );
                    });
                    let zero4 = kb.c_i64(0);
                    let past_first = kb.bin(BinOp::Gt, kbi, zero4);
                    kb.if_then(past_first, |kb| {
                        // Parity of kbi-1 is the opposite of kbi's.
                        kb.if_(even, |kb| compute_tiles(kb, 1), |kb| compute_tiles(kb, 0));
                    });
                });
            }

            // Write the C tile back (one burst per row).
            let rows = kb.c_i64(bs);
            kb.for_range("wr", rows, |kb, r| {
                let row = kb.add(ib, r);
                let dim_e = kb.c_i64(p.dim);
                let rowd = kb.mul(row, dim_e);
                let cdst = kb.add(rowd, jb);
                let bs_c = kb.c_i64(bs);
                let csrc = kb.mul(r, bs_c);
                let clen = kb.c_i64(bs);
                kb.write_back(c_loc, c, cdst, csrc, clen);
            });
        });
    });
    kb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg};
    use nymble_ir::Value;

    fn small() -> GemmParams {
        GemmParams {
            dim: 16,
            threads: 2,
            vec: 4,
            block: 8,
        }
    }

    fn check_version(v: GemmVersion) {
        let p = small();
        let k = build(v, &p);
        let n = (p.dim * p.dim) as usize;
        let a = reference::gen_matrix(p.dim as usize, 1);
        let b = reference::gen_matrix(p.dim as usize, 2);
        let gold = reference::gemm(&a, &b, p.dim as usize);
        let to_vals = |m: &[f32]| m.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(to_vals(&a)),
                LaunchArg::Buffer(to_vals(&b)),
                LaunchArg::Buffer(vec![Value::F32(0.0); n]),
            ],
        );
        let got = buffer_as_f32(&r.buffers[2]);
        for (i, (g, e)) in got.iter().zip(gold.iter()).enumerate() {
            assert!(
                (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                "{v:?} mismatch at {i}: {g} vs {e}"
            );
        }
    }

    #[test]
    fn naive_matches_reference() {
        check_version(GemmVersion::Naive);
    }

    #[test]
    fn no_critical_matches_reference() {
        check_version(GemmVersion::NoCritical);
    }

    #[test]
    fn vectorized_matches_reference() {
        check_version(GemmVersion::Vectorized);
    }

    #[test]
    fn blocked_matches_reference() {
        check_version(GemmVersion::Blocked);
    }

    #[test]
    fn double_buffered_matches_reference() {
        check_version(GemmVersion::DoubleBuffered);
    }

    #[test]
    fn naive_uses_critical_sections() {
        let p = small();
        let k = build(GemmVersion::Naive, &p);
        let n = (p.dim * p.dim) as usize;
        let a = vec![Value::F32(1.0); n];
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(a.clone()),
                LaunchArg::Buffer(a),
                LaunchArg::Buffer(vec![Value::F32(0.0); n]),
            ],
        );
        assert_eq!(
            r.critical_entries,
            (p.dim * p.dim) as u64 * p.threads as u64,
            "one critical entry per (i, j, thread)"
        );
    }

    #[test]
    fn later_versions_have_no_critical_sections() {
        for v in [
            GemmVersion::NoCritical,
            GemmVersion::Vectorized,
            GemmVersion::Blocked,
            GemmVersion::DoubleBuffered,
        ] {
            let k = build(v, &small());
            let mut has_crit = false;
            nymble_ir::stmt::visit_stmts(&k.body, &mut |s| {
                if matches!(s, nymble_ir::Stmt::Critical { .. }) {
                    has_crit = true;
                }
            });
            assert!(!has_crit, "{v:?} must not contain critical sections");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the vector width")]
    fn rejects_unaligned_dim() {
        let p = GemmParams {
            dim: 10,
            threads: 2,
            vec: 4,
            block: 2,
        };
        let _ = build(GemmVersion::Vectorized, &p);
    }
}
