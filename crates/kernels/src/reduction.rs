//! Barrier-based parallel tree reduction — the workload that exercises
//! `#pragma omp barrier` (which the paper's infrastructure supports but its
//! case studies do not use): threads alternate compute and barrier phases,
//! producing a state timeline with clearly synchronized fronts.

use nymble_ir::{BinOp, Kernel, KernelBuilder, MapDir, ScalarType, Type};

/// Build a tree sum of `n` f32 values over `threads` hardware threads
/// (`n` and `threads` powers of two, `threads <= n`).
///
/// Arguments: `DATA` (f32, tofrom — reduced in place, result in `DATA[0]`).
///
/// Phase `s` halves the active width; each thread sums its stripe of pair
/// sums, then all threads barrier before the next phase.
pub fn build(n: i64, threads: u32) -> Kernel {
    assert!(n.count_ones() == 1 && threads.count_ones() == 1);
    assert!(
        (threads as i64) <= n / 2,
        "need at least two elements per thread"
    );
    let mut kb = KernelBuilder::new("tree_reduce", threads);
    let data = kb.buffer("DATA", ScalarType::F32, MapDir::ToFrom);

    let mut width = n / 2;
    while width >= 1 {
        // for i in tid..width step nthreads: DATA[i] += DATA[i + width]
        let tid = kb.thread_id();
        let my = kb.cast(ScalarType::I64, tid);
        let nt = kb.num_threads_expr();
        let nt64 = kb.cast(ScalarType::I64, nt);
        let w = kb.c_i64(width);
        kb.for_each(&format!("i_w{width}"), my, w, nt64, |kb, i| {
            let a = kb.load(data, i, Type::F32);
            let w2 = kb.c_i64(width);
            let j = kb.add(i, w2);
            let b = kb.load(data, j, Type::F32);
            let s = kb.bin(BinOp::Add, a, b);
            kb.store(data, i, s);
        });
        kb.barrier();
        width /= 2;
    }
    kb.finish()
}

/// CPU reference: same pairwise order as the kernel (bit-identical in f32).
pub fn reference(data: &[f32]) -> f32 {
    let mut v = data.to_vec();
    let mut width = v.len() / 2;
    while width >= 1 {
        for i in 0..width {
            v[i] += v[i + width];
        }
        width /= 2;
    }
    v[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gen_matrix;
    use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg};
    use nymble_ir::Value;

    #[test]
    fn tree_reduce_matches_reference_bitwise() {
        let n = 64usize;
        let data = gen_matrix(8, 21); // 64 values
        let k = build(n as i64, 4);
        let r = Interpreter::run(
            &k,
            &[LaunchArg::Buffer(
                data.iter().map(|&x| Value::F32(x)).collect(),
            )],
        );
        let got = buffer_as_f32(&r.buffers[0])[0];
        let expect = reference(&data);
        assert_eq!(got, expect, "pairwise order must match exactly");
    }

    #[test]
    fn barrier_count_is_log2_n() {
        let k = build(64, 4);
        let mut barriers = 0;
        nymble_ir::stmt::visit_stmts(&k.body, &mut |s| {
            if matches!(s, nymble_ir::Stmt::Barrier) {
                barriers += 1;
            }
        });
        assert_eq!(barriers, 6, "log2(64) phases");
    }

    #[test]
    #[should_panic(expected = "two elements per thread")]
    fn too_many_threads_rejected() {
        let _ = build(8, 8);
    }
}
