//! Loop-carried dependence detection and the static latency model.
//!
//! The scheduler in `nymble-hls` derives a pipelined loop's recurrence
//! initiation interval from carried dataflow edges (`finish[def] −
//! start[use]`). This module re-derives the same bound *symbolically* on
//! the IR, without compiling: a recurrence exists when the last assignment
//! to a variable in a loop body transitively reads the variable's carried
//! value, and its latency is the operator-chain depth along that path.
//!
//! `nymble-lint` deliberately does not depend on `nymble-hls` (the HLS
//! crate gates compiles *through* the linter), so the operator latencies
//! are mirrored here as named constants; a test on the `nymble-hls` side
//! asserts the mirror agrees with `OpClass::latency`.

use nymble_ir::{BinOp, Expr, ExprId, Kernel, Stmt, UnOp, VarId};
use std::collections::HashMap;

/// Operator latencies, mirroring `nymble_hls::op::OpClass::latency()`.
/// Kept in sync by `latency_table_mirrors_lint` in `nymble-hls`.
pub mod latency {
    pub const INT_ALU: u64 = 1;
    pub const INT_MUL: u64 = 3;
    pub const INT_DIV: u64 = 16;
    pub const F_ADD: u64 = 4;
    pub const F_MUL: u64 = 4;
    pub const F_DIV: u64 = 14;
    pub const F_SQRT: u64 = 14;
    pub const CAST: u64 = 1;
    pub const EXT_LOAD: u64 = 8;
    pub const EXT_STORE: u64 = 1;
    pub const LOCAL_LOAD: u64 = 2;
    pub const LOCAL_STORE: u64 = 1;
}

/// Is the expression's value floating point? Mirrors the type derivation
/// the DFG lowering uses to classify operators (comparisons are integer).
pub(crate) fn expr_float(k: &Kernel, e: ExprId) -> bool {
    match k.expr(e) {
        Expr::Const(v) => v.ty().scalar.is_float(),
        Expr::Arg(a) => match k.arg(*a).kind {
            nymble_ir::ArgKind::Scalar(st) => st.is_float(),
            nymble_ir::ArgKind::Buffer { elem, .. } => elem.is_float(),
        },
        Expr::ThreadId | Expr::NumThreads => false,
        Expr::Var(v) => k.var(*v).ty.scalar.is_float(),
        Expr::Unary(_, a) => expr_float(k, *a),
        Expr::Binary(op, a, b) => {
            if op.is_comparison() {
                false
            } else {
                expr_float(k, *a) || expr_float(k, *b)
            }
        }
        Expr::Select { then_v, else_v, .. } => expr_float(k, *then_v) || expr_float(k, *else_v),
        Expr::Cast(ty, _) => ty.is_float(),
        Expr::LoadExt { ty, .. } | Expr::LoadLocal { ty, .. } => ty.scalar.is_float(),
        Expr::Lane(a, _) | Expr::Splat(a, _) => expr_float(k, *a),
    }
}

/// Latency of a binary operator on the given operand float-ness
/// (mirrors `nymble_hls::op::classify_binop`).
pub fn binop_latency(op: BinOp, float: bool) -> u64 {
    use latency::*;
    if op.is_comparison() {
        return INT_ALU;
    }
    match (float, op) {
        (true, BinOp::Mul) => F_MUL,
        (true, BinOp::Div | BinOp::Rem) => F_DIV,
        (true, _) => F_ADD,
        (false, BinOp::Mul) => INT_MUL,
        (false, BinOp::Div | BinOp::Rem) => INT_DIV,
        (false, _) => INT_ALU,
    }
}

/// Latency of a unary operator (mirrors `nymble_hls::op::classify_unop`).
pub fn unop_latency(op: UnOp, float: bool) -> u64 {
    use latency::*;
    match (float, op) {
        (true, UnOp::Sqrt) => F_SQRT,
        (true, _) => F_ADD,
        (false, UnOp::Sqrt) => INT_DIV,
        (false, _) => INT_ALU,
    }
}

/// Latency contributed by the operator at expression node `e` itself
/// (its output delay relative to its inputs); leaves cost 0.
pub(crate) fn node_latency(k: &Kernel, e: ExprId) -> u64 {
    match k.expr(e) {
        Expr::Unary(op, a) => unop_latency(*op, expr_float(k, *a)),
        Expr::Binary(op, a, b) => binop_latency(*op, expr_float(k, *a) || expr_float(k, *b)),
        Expr::Cast(..) => latency::CAST,
        Expr::Select { .. } => latency::INT_ALU,
        Expr::LoadExt { .. } => latency::EXT_LOAD,
        Expr::LoadLocal { .. } => latency::LOCAL_LOAD,
        _ => 0,
    }
}

/// Total operator latency of the whole expression tree (an upper bound on
/// the critical path; used for pipeline depth estimates).
pub(crate) fn expr_chain_latency(k: &Kernel, e: ExprId) -> u64 {
    let children = k.expr(e).children();
    let deepest = children
        .into_iter()
        .map(|c| expr_chain_latency(k, c))
        .max()
        .unwrap_or(0);
    deepest + node_latency(k, e)
}

/// One detected loop-carried dependence.
#[derive(Clone, Debug, PartialEq)]
pub struct Recurrence {
    /// Variable (or memory) the value is carried through.
    pub name: String,
    /// Operator-chain latency from the carried use to the new definition —
    /// a lower bound on the loop's initiation interval.
    pub latency: u64,
    /// Carried through a local/external memory rather than a register.
    pub through_memory: bool,
}

/// Latency distance of an expression from the carried value: `Some(d)`
/// when evaluating `e` reads (directly or transitively) a variable whose
/// entry in `dist` is `Some`, where `d` includes the operators between
/// the carried read and `e`'s output.
fn expr_dist(k: &Kernel, e: ExprId, dist: &HashMap<VarId, Option<u64>>) -> Option<u64> {
    match k.expr(e) {
        Expr::Var(v) => dist.get(v).copied().flatten(),
        Expr::Const(_) | Expr::Arg(_) | Expr::ThreadId | Expr::NumThreads => None,
        other => {
            let through = other
                .children()
                .into_iter()
                .filter_map(|c| expr_dist(k, c, dist))
                .max()?;
            Some(through + node_latency(k, e))
        }
    }
}

/// Structural equality of two expression trees (same shape and leaves).
fn same_expr(k: &Kernel, a: ExprId, b: ExprId) -> bool {
    if a == b {
        return true;
    }
    match (k.expr(a), k.expr(b)) {
        (Expr::Const(x), Expr::Const(y)) => x == y,
        (Expr::Arg(x), Expr::Arg(y)) => x == y,
        (Expr::ThreadId, Expr::ThreadId) | (Expr::NumThreads, Expr::NumThreads) => true,
        (Expr::Var(x), Expr::Var(y)) => x == y,
        (Expr::Unary(ox, x), Expr::Unary(oy, y)) => ox == oy && same_expr(k, *x, *y),
        (Expr::Binary(ox, xa, xb), Expr::Binary(oy, ya, yb)) => {
            ox == oy && same_expr(k, *xa, *ya) && same_expr(k, *xb, *yb)
        }
        (Expr::Cast(tx, x), Expr::Cast(ty, y)) => tx == ty && same_expr(k, *x, *y),
        (
            Expr::Select {
                cond: cx,
                then_v: tx,
                else_v: ex,
            },
            Expr::Select {
                cond: cy,
                then_v: ty,
                else_v: ey,
            },
        ) => same_expr(k, *cx, *cy) && same_expr(k, *tx, *ty) && same_expr(k, *ex, *ey),
        (
            Expr::LoadExt {
                buf: bx, index: ix, ..
            },
            Expr::LoadExt {
                buf: by, index: iy, ..
            },
        ) => bx == by && same_expr(k, *ix, *iy),
        (
            Expr::LoadLocal {
                mem: mx, index: ix, ..
            },
            Expr::LoadLocal {
                mem: my, index: iy, ..
            },
        ) => mx == my && same_expr(k, *ix, *iy),
        (Expr::Lane(x, lx), Expr::Lane(y, ly)) => lx == ly && same_expr(k, *x, *y),
        (Expr::Splat(x, lx), Expr::Splat(y, ly)) => lx == ly && same_expr(k, *x, *y),
        _ => false,
    }
}

/// Latency of the path from node `needle` (matched structurally against a
/// load) to the root of `root`'s tree, `None` if unreachable.
fn path_latency_from_load(
    k: &Kernel,
    root: ExprId,
    is_needle: &impl Fn(&Kernel, ExprId) -> bool,
) -> Option<u64> {
    if is_needle(k, root) {
        return Some(0);
    }
    let through = k
        .expr(root)
        .children()
        .into_iter()
        .filter_map(|c| path_latency_from_load(k, c, is_needle))
        .max()?;
    Some(through + node_latency(k, root))
}

/// Collect the variables assigned anywhere in a (flattened) loop body.
fn assigned_vars(body: &[Stmt], out: &mut Vec<VarId>) {
    for s in body {
        match s {
            Stmt::Assign { var, .. } if !out.contains(var) => out.push(*var),
            Stmt::If { then_b, else_b, .. } => {
                assigned_vars(then_b, out);
                assigned_vars(else_b, out);
            }
            Stmt::For { body, .. } | Stmt::Critical { body } => assigned_vars(body, out),
            _ => {}
        }
    }
}

/// Run one ordered pass over the body tracking each variable's latency
/// distance from `target`'s carried value. An assignment *overwrites* the
/// distance (a kill when the value no longer depends on the carry).
fn carry_pass(k: &Kernel, body: &[Stmt], dist: &mut HashMap<VarId, Option<u64>>) {
    for s in body {
        match s {
            Stmt::Assign { var, expr } => {
                let d = expr_dist(k, *expr, dist);
                dist.insert(*var, d);
            }
            Stmt::If { then_b, else_b, .. } => {
                // Either branch may or may not run: merge conservatively,
                // keeping the longest surviving carry distance.
                let mut dt = dist.clone();
                let mut de = dist.clone();
                carry_pass(k, then_b, &mut dt);
                carry_pass(k, else_b, &mut de);
                let keys: Vec<VarId> = dist
                    .keys()
                    .chain(dt.keys())
                    .chain(de.keys())
                    .copied()
                    .collect();
                for v in keys {
                    let m = [dist.get(&v), dt.get(&v), de.get(&v)]
                        .into_iter()
                        .flatten()
                        .filter_map(|o| *o)
                        .max();
                    dist.insert(v, m);
                }
            }
            // Nested loops/criticals are their own scheduling regions; the
            // enclosing loop is not pipelined then, so stay conservative
            // and treat their assignments as opaque kills of nothing.
            Stmt::For { .. } | Stmt::Critical { .. } => {}
            _ => {}
        }
    }
}

/// Detect loop-carried dependences in `body` (the body of a candidate
/// pipelined loop): register recurrences (`acc = f(acc, …)`, possibly via
/// intermediate variables) and memory recurrences (a store whose value
/// reads the same element it overwrites).
pub fn body_recurrences(k: &Kernel, body: &[Stmt]) -> Vec<Recurrence> {
    let mut out = Vec::new();

    // Register recurrences: seed the target's distance at 0, run the body
    // once in order; a surviving positive distance on the target after the
    // full pass is a carried chain whose latency bounds the II.
    let mut targets = Vec::new();
    assigned_vars(body, &mut targets);
    for v in targets {
        let mut dist: HashMap<VarId, Option<u64>> = HashMap::new();
        dist.insert(v, Some(0));
        carry_pass(k, body, &mut dist);
        if let Some(Some(lat)) = dist.get(&v) {
            if *lat >= 1 {
                out.push(Recurrence {
                    name: k.var(v).name.clone(),
                    latency: *lat,
                    through_memory: false,
                });
            }
        }
    }

    // Memory recurrences: a store whose stored value loads the same
    // element of the same memory. The carried path runs load → operators
    // → store, so its latency includes both memory endpoints.
    fn scan_stores(k: &Kernel, body: &[Stmt], out: &mut Vec<Recurrence>) {
        for s in body {
            match s {
                Stmt::StoreLocal { mem, index, value } => {
                    let needle = |k: &Kernel, e: ExprId| {
                        matches!(k.expr(e), Expr::LoadLocal { mem: m, index: i, .. }
                            if m == mem && same_expr(k, *i, *index))
                    };
                    if let Some(p) = path_latency_from_load(k, *value, &needle) {
                        out.push(Recurrence {
                            name: k.local_mem(*mem).name.clone(),
                            latency: latency::LOCAL_LOAD + p + latency::LOCAL_STORE,
                            through_memory: true,
                        });
                    }
                }
                Stmt::StoreExt { buf, index, value } => {
                    let needle = |k: &Kernel, e: ExprId| {
                        matches!(k.expr(e), Expr::LoadExt { buf: b, index: i, .. }
                            if b == buf && same_expr(k, *i, *index))
                    };
                    if let Some(p) = path_latency_from_load(k, *value, &needle) {
                        out.push(Recurrence {
                            name: k.arg(*buf).name.clone(),
                            latency: latency::EXT_LOAD + p + latency::EXT_STORE,
                            through_memory: true,
                        });
                    }
                }
                Stmt::If { then_b, else_b, .. } => {
                    scan_stores(k, then_b, out);
                    scan_stores(k, else_b, out);
                }
                _ => {}
            }
        }
    }
    scan_stores(k, body, &mut out);
    out.sort_by(|a, b| b.latency.cmp(&a.latency).then(a.name.cmp(&b.name)));
    out
}

/// Largest recurrence-implied II of a body (1 when no recurrence).
pub fn recurrence_ii(k: &Kernel, body: &[Stmt]) -> u64 {
    body_recurrences(k, body)
        .first()
        .map(|r| r.latency)
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    fn loop_body(k: &Kernel) -> &[Stmt] {
        match &k.body[..] {
            [Stmt::For { body, .. }, ..] => body,
            other => panic!("expected leading loop, got {other:?}"),
        }
    }

    #[test]
    fn fadd_fmul_chain_recurrence() {
        // acc = (acc + A[i]) * c — carried chain FAdd + FMul = 8.
        let mut kb = KernelBuilder::new("rec", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let acc = kb.var("acc", Type::F32);
        let n = kb.c_i64(16);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(acc);
            let s = kb.add(cur, v);
            let c = kb.c_f32(1.5);
            let m = kb.mul(s, c);
            kb.set(acc, m);
        });
        let k = kb.finish();
        let recs = body_recurrences(&k, loop_body(&k));
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert_eq!(recs[0].name, "acc");
        assert_eq!(recs[0].latency, latency::F_ADD + latency::F_MUL);
        assert!(!recs[0].through_memory);
        assert_eq!(recurrence_ii(&k, loop_body(&k)), 8);
    }

    #[test]
    fn overwritten_temp_is_not_a_recurrence() {
        // t = A[i]; C[i] = t — t is assigned fresh each iteration.
        let mut kb = KernelBuilder::new("fresh", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::From);
        let t = kb.var("t", Type::F32);
        let n = kb.c_i64(16);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            kb.set(t, v);
            let cur = kb.get(t);
            kb.store(c, i, cur);
        });
        let k = kb.finish();
        assert!(body_recurrences(&k, loop_body(&k)).is_empty());
        assert_eq!(recurrence_ii(&k, loop_body(&k)), 1);
    }

    #[test]
    fn chained_through_intermediate_var() {
        // t = acc + x; acc = t * y — still a carried chain on acc.
        let mut kb = KernelBuilder::new("chain", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let acc = kb.var("acc", Type::F32);
        let t = kb.var("t", Type::F32);
        let n = kb.c_i64(16);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(acc);
            let s = kb.add(cur, v);
            kb.set(t, s);
            let tv = kb.get(t);
            let m = kb.mul(tv, v);
            kb.set(acc, m);
        });
        let k = kb.finish();
        let recs = body_recurrences(&k, loop_body(&k));
        let acc_rec = recs
            .iter()
            .find(|r| r.name == "acc")
            .expect("acc recurrence");
        assert_eq!(acc_rec.latency, latency::F_ADD + latency::F_MUL);
    }

    #[test]
    fn memory_recurrence_through_external_buffer() {
        // H[i] = H[i] + 1 — read-modify-write through DRAM.
        let mut kb = KernelBuilder::new("hist", 1);
        let h = kb.buffer("H", ScalarType::I32, MapDir::ToFrom);
        let n = kb.c_i64(16);
        kb.for_range("i", n, |kb, i| {
            let cur = kb.load(h, i, Type::I32);
            let one = kb.c_i32(1);
            let inc = kb.add(cur, one);
            kb.store(h, i, inc);
        });
        let k = kb.finish();
        let recs = body_recurrences(&k, loop_body(&k));
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert!(recs[0].through_memory);
        assert_eq!(
            recs[0].latency,
            latency::EXT_LOAD + latency::INT_ALU + latency::EXT_STORE
        );
    }
}
