//! `nymble-lint` — command-line front end of the static analyzer.
//!
//! ```text
//! nymble-lint [--lint=deny|warn|off] [--perf-lint=deny|warn|off] [--json]
//!             [--set clean|buggy|all] [--kernel NAME] [--list]
//! ```
//!
//! The built-in registry covers every shipped kernel (GEMM v1–v5, π, tree
//! reduction, vector add, dot, Jacobi, histogram, SpMV) plus the lint
//! fixtures. The *clean* set (shipped kernels + near-miss fixtures) must
//! produce no diagnostics; the *buggy* set runs in expectation mode — each
//! fixture must produce exactly its declared codes. CI runs both, so the
//! process exit code is the gate:
//!
//! * `0` — everything matched expectations (or `--lint=warn/off`),
//! * `1` — a clean kernel produced diagnostics under `--lint=deny`, or a
//!   buggy fixture did not reproduce its expected codes.

use kernels::fixtures;
use kernels::gemm::{GemmParams, GemmVersion};
use kernels::pi::PiParams;
use nymble_ir::Kernel;
use nymble_lint::{lint_kernel, perf_lint_kernel, Code, LintLevel};

struct Entry {
    name: String,
    kernel: Kernel,
    /// Expected codes; empty means "must be clean".
    expect: Vec<Code>,
    /// Whether this entry belongs to the buggy (expectation) set.
    buggy: bool,
    /// Performance-family fixture: additionally run the `NP0xx` analyzer
    /// and merge its findings. Shipped kernels stay correctness-only here
    /// — their perf profile is the business of the repro binaries, where
    /// `--perf-lint=warn` reports it without gating.
    perf: bool,
}

fn registry() -> Vec<Entry> {
    let mut entries = Vec::new();
    // Shipped kernels, at the dimensions of the repo's fast test tier.
    let gp = GemmParams {
        dim: 32,
        threads: 4,
        vec: 4,
        block: 8,
    };
    for v in GemmVersion::ALL {
        entries.push(Entry {
            name: format!("gemm_{}", v.name()),
            kernel: kernels::gemm::build(v, &gp),
            expect: Vec::new(),
            buggy: false,
            perf: false,
        });
    }
    entries.push(Entry {
        name: "pi".into(),
        kernel: kernels::pi::build(&PiParams {
            steps: 1024,
            threads: 4,
            bs: 8,
        }),
        expect: Vec::new(),
        buggy: false,
        perf: false,
    });
    entries.push(Entry {
        name: "tree_reduce".into(),
        kernel: kernels::reduction::build(64, 4),
        expect: Vec::new(),
        buggy: false,
        perf: false,
    });
    entries.push(Entry {
        name: "vecadd".into(),
        kernel: kernels::extra::vecadd(64, 4),
        expect: Vec::new(),
        buggy: false,
        perf: false,
    });
    entries.push(Entry {
        name: "dot".into(),
        kernel: kernels::extra::dot(64, 4),
        expect: Vec::new(),
        buggy: false,
        perf: false,
    });
    entries.push(Entry {
        name: "jacobi".into(),
        kernel: kernels::extra::jacobi(16, 4),
        expect: Vec::new(),
        buggy: false,
        perf: false,
    });
    entries.push(Entry {
        name: "histogram".into(),
        kernel: kernels::extra::histogram(64, 8, 4),
        expect: Vec::new(),
        buggy: false,
        perf: false,
    });
    entries.push(Entry {
        name: "spmv".into(),
        kernel: kernels::spmv::build(16, 4),
        expect: Vec::new(),
        buggy: false,
        perf: false,
    });
    // Lint fixtures: near-misses join the clean set, triggering fixtures
    // form the buggy set.
    for f in fixtures::all() {
        let expect: Vec<Code> = f
            .expect
            .iter()
            .map(|s| Code::parse(s).expect("fixture declares a valid code"))
            .collect();
        entries.push(Entry {
            name: f.name.to_string(),
            buggy: !expect.is_empty(),
            perf: f.perf,
            kernel: f.kernel,
            expect,
        });
    }
    entries
}

fn usage() -> ! {
    eprintln!(
        "usage: nymble-lint [--lint[=deny|warn|off]] [--perf-lint[=deny|warn|off]] \
         [--json] [--set clean|buggy|all] [--kernel NAME] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let mut level = LintLevel::Deny;
    let mut perf_level = LintLevel::Deny;
    let mut json = false;
    let mut set = "all".to_string();
    let mut only: Option<String> = None;
    let mut list = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--lint" => level = LintLevel::Deny,
            "--perf-lint" => perf_level = LintLevel::Deny,
            "--json" => json = true,
            "--list" => list = true,
            "--set" => set = take(&mut i),
            "--kernel" => only = Some(take(&mut i)),
            "--help" | "-h" => usage(),
            _ => {
                if let Some(v) = a.strip_prefix("--lint=") {
                    level = LintLevel::parse(v).unwrap_or_else(|| usage());
                } else if let Some(v) = a.strip_prefix("--perf-lint=") {
                    perf_level = LintLevel::parse(v).unwrap_or_else(|| usage());
                } else if let Some(v) = a.strip_prefix("--set=") {
                    set = v.to_string();
                } else if let Some(v) = a.strip_prefix("--kernel=") {
                    only = Some(v.to_string());
                } else {
                    eprintln!("unknown flag: {a}");
                    usage();
                }
            }
        }
        i += 1;
    }
    if !matches!(set.as_str(), "clean" | "buggy" | "all") {
        eprintln!("--set must be clean, buggy or all (got {set})");
        usage();
    }

    let entries: Vec<Entry> = registry()
        .into_iter()
        .filter(|e| match set.as_str() {
            "clean" => !e.buggy,
            "buggy" => e.buggy,
            _ => true,
        })
        .filter(|e| only.as_deref().is_none_or(|n| e.name == n))
        // With the perf family off, its fixtures have no expectation to
        // check — drop them so `--perf-lint=off` output is byte-identical
        // to the pre-NP registry.
        .filter(|e| perf_level != LintLevel::Off || !e.perf)
        .collect();
    if entries.is_empty() {
        eprintln!("no kernel matches the selection");
        std::process::exit(2);
    }
    if list {
        for e in &entries {
            let tag = if e.buggy { "buggy" } else { "clean" };
            println!("{:<24} {tag}", e.name);
        }
        return;
    }
    if level == LintLevel::Off {
        println!("lint off: {} kernel(s) skipped", entries.len());
        return;
    }

    let mut failed = 0usize;
    let mut json_reports: Vec<String> = Vec::new();
    for e in &entries {
        let mut report = lint_kernel(&e.kernel);
        if e.perf {
            report
                .diagnostics
                .extend(perf_lint_kernel(&e.kernel).diagnostics);
        }
        if json {
            // One JSON array per kernel would not concatenate, so collect
            // all diagnostics into a single top-level array.
            let body = report.to_json();
            if body != "[]" {
                json_reports.push(body[1..body.len() - 1].trim_matches('\n').to_string());
            }
        } else {
            print!("{}", report.render_human());
        }
        if e.buggy {
            // Expectation mode: the fixture must produce exactly its codes.
            if report.codes() != e.expect {
                failed += 1;
                eprintln!(
                    "FAIL {}: expected {:?}, got {:?}",
                    e.name,
                    e.expect.iter().map(|c| c.as_str()).collect::<Vec<_>>(),
                    report
                        .codes()
                        .iter()
                        .map(|c| c.as_str())
                        .collect::<Vec<_>>()
                );
            }
        } else if !report.is_clean() && level == LintLevel::Deny {
            failed += 1;
            eprintln!("FAIL {}: expected clean, found diagnostics", e.name);
        }
    }
    if json {
        if json_reports.is_empty() {
            println!("[]");
        } else {
            println!("[\n{}\n]", json_reports.join(",\n"));
        }
    }
    if failed > 0 {
        eprintln!("nymble-lint: {failed} kernel(s) failed the gate");
        std::process::exit(1);
    }
}
