//! The analysis engine: per-thread affine evaluation of index expressions,
//! thread-dependence taint, and collection of every memory access site with
//! its per-thread [`IndexSet`], critical/barrier-phase context, and
//! pre-order statement index (which keys into `nymble_ir::pretty::listing`
//! spans).
//!
//! `thread_id` is instantiated per hardware thread: the walker runs one
//! symbolic pass per statement but keeps one environment per thread, so a
//! loop like `for (i = my; i < w; i += NT)` gets an exact per-thread trip
//! count — including *zero* for threads whose range is empty (the late
//! phases of a tree reduction), which a purely symbolic analysis would
//! falsely flag.

use crate::affine::{IndexSet, Term};
use nymble_ir::{ArgId, Expr, ExprId, Kernel, LocalMemId, Stmt, VarId};
use std::collections::{HashMap, HashSet};

/// Identity of an accessed memory: external buffer argument or local BRAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum BufKey {
    Ext(ArgId),
    Local(LocalMemId),
}

/// One static access site (a load, store, or burst endpoint).
#[derive(Clone, Debug)]
pub(crate) struct Site {
    /// Pre-order statement index of the statement performing the access.
    pub stmt_idx: usize,
    pub buf: BufKey,
    pub is_write: bool,
    pub in_critical: bool,
    /// Under at least one `if`: the access may be dead, so it cannot prove
    /// an out-of-bounds fault (NL004), but it still *may* race (NL001).
    pub guarded: bool,
    /// Barrier phase (incremented at each top-level barrier).
    pub phase: u32,
    /// Set when this site is part of a detected read-modify-write pattern;
    /// the group id ties the load and the store together.
    pub rmw_group: Option<usize>,
    /// Per-thread element index sets, length `num_threads`.
    pub sets: Vec<IndexSet>,
}

/// One `barrier` statement and whether its control context is
/// thread-dependent (NL002).
#[derive(Clone, Debug)]
pub(crate) struct BarrierSite {
    pub stmt_idx: usize,
    pub divergent: bool,
}

pub(crate) struct Analysis {
    pub sites: Vec<Site>,
    pub barriers: Vec<BarrierSite>,
}

/// A linear form over loop-iteration slots: `base + Σ coeff · q_slot`.
/// Shared with the performance passes (`perf.rs`), which run the same
/// per-thread affine evaluation over their own walk.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Lin {
    pub(crate) base: i64,
    /// Sorted by slot id; no zero coefficients.
    pub(crate) coeffs: Vec<(u32, i64)>,
}

impl Lin {
    pub(crate) fn konst(c: i64) -> Lin {
        Lin {
            base: c,
            coeffs: Vec::new(),
        }
    }

    pub(crate) fn as_const(&self) -> Option<i64> {
        self.coeffs.is_empty().then_some(self.base)
    }

    pub(crate) fn add(&self, o: &Lin) -> Option<Lin> {
        let base = self.base.checked_add(o.base)?;
        let mut coeffs = self.coeffs.clone();
        for &(slot, c) in &o.coeffs {
            match coeffs.binary_search_by_key(&slot, |e| e.0) {
                Ok(i) => {
                    coeffs[i].1 = coeffs[i].1.checked_add(c)?;
                    if coeffs[i].1 == 0 {
                        coeffs.remove(i);
                    }
                }
                Err(i) => coeffs.insert(i, (slot, c)),
            }
        }
        Some(Lin { base, coeffs })
    }

    fn scale(&self, f: i64) -> Option<Lin> {
        if f == 0 {
            return Some(Lin::konst(0));
        }
        let base = self.base.checked_mul(f)?;
        let mut coeffs = Vec::with_capacity(self.coeffs.len());
        for &(slot, c) in &self.coeffs {
            coeffs.push((slot, c.checked_mul(f)?));
        }
        Some(Lin { base, coeffs })
    }

    fn sub(&self, o: &Lin) -> Option<Lin> {
        self.add(&o.scale(-1)?)
    }
}

/// Abstract value of an expression for one thread.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Val {
    Lin(Lin),
    Unknown,
}

impl Val {
    pub(crate) fn konst(c: i64) -> Val {
        Val::Lin(Lin::konst(c))
    }

    pub(crate) fn as_const(&self) -> Option<i64> {
        match self {
            Val::Lin(l) => l.as_const(),
            Val::Unknown => None,
        }
    }
}

/// Control context threaded through the walk.
#[derive(Clone, Copy)]
struct Ctx {
    top_level: bool,
    in_critical: bool,
    guards: u32,
    tainted: bool,
}

pub(crate) struct Collector<'k> {
    k: &'k Kernel,
    nt: usize,
    /// Per-thread variable environments.
    envs: Vec<HashMap<VarId, Val>>,
    /// Per loop slot, per thread: trip count (`None` = unknown).
    slot_trips: Vec<Vec<Option<u64>>>,
    tainted_vars: HashSet<VarId>,
    sites: Vec<Site>,
    barriers: Vec<BarrierSite>,
    stmt_idx: usize,
    phase: u32,
}

pub(crate) fn analyze(k: &Kernel) -> Analysis {
    let nt = k.num_threads.max(1) as usize;
    let mut c = Collector {
        k,
        nt,
        envs: vec![HashMap::new(); nt],
        slot_trips: Vec::new(),
        tainted_vars: taint_fixpoint(k),
        sites: Vec::new(),
        barriers: Vec::new(),
        stmt_idx: 0,
        phase: 0,
    };
    c.walk_block(
        &k.body,
        Ctx {
            top_level: true,
            in_critical: false,
            guards: 0,
            tainted: false,
        },
    );
    Analysis {
        sites: c.sites,
        barriers: c.barriers,
    }
}

// ---------------------------------------------------------------------------
// Thread-dependence taint (NL002 support).
// ---------------------------------------------------------------------------

/// Fixpoint over assignments: a variable is thread-dependent when it is
/// assigned a thread-dependent value or assigned at all under
/// thread-dependent control flow.
fn taint_fixpoint(k: &Kernel) -> HashSet<VarId> {
    let mut tainted = HashSet::new();
    // Each pass can only add variables, so |vars| passes suffice.
    for _ in 0..=k.vars.len() {
        let before = tainted.len();
        taint_block(k, &k.body, false, &mut tainted);
        if tainted.len() == before {
            break;
        }
    }
    tainted
}

fn taint_block(k: &Kernel, b: &[Stmt], ctx: bool, tainted: &mut HashSet<VarId>) {
    for s in b {
        match s {
            Stmt::Assign { var, expr } if ctx || expr_tainted(k, *expr, tainted) => {
                tainted.insert(*var);
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
                ..
            } => {
                let bt = ctx
                    || [start, end, step]
                        .into_iter()
                        .any(|e| expr_tainted(k, *e, tainted));
                if bt {
                    tainted.insert(*var);
                }
                taint_block(k, body, bt, tainted);
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let bt = ctx || expr_tainted(k, *cond, tainted);
                taint_block(k, then_b, bt, tainted);
                taint_block(k, else_b, bt, tainted);
            }
            Stmt::Critical { body } => taint_block(k, body, ctx, tainted),
            _ => {}
        }
    }
}

fn expr_tainted(k: &Kernel, e: ExprId, tainted: &HashSet<VarId>) -> bool {
    match k.expr(e) {
        Expr::ThreadId => true,
        // Local memories are per-thread storage: their contents are
        // thread-dependent by construction.
        Expr::LoadLocal { .. } => true,
        Expr::Var(v) => tainted.contains(v),
        Expr::Const(_) | Expr::Arg(_) | Expr::NumThreads => false,
        Expr::LoadExt { index, .. } => expr_tainted(k, *index, tainted),
        other => other
            .children()
            .iter()
            .any(|c| expr_tainted(k, *c, tainted)),
    }
}

// ---------------------------------------------------------------------------
// The main walk.
// ---------------------------------------------------------------------------

impl<'k> Collector<'k> {
    fn walk_block(&mut self, b: &[Stmt], ctx: Ctx) {
        let inner = Ctx {
            top_level: false,
            ..ctx
        };
        for s in b {
            let idx = self.stmt_idx;
            self.stmt_idx += 1;
            match s {
                Stmt::Assign { var, expr } => {
                    self.record_reads(*expr, idx, ctx);
                    for t in 0..self.nt {
                        let v = self.eval(t, *expr);
                        self.envs[t].insert(*var, v);
                    }
                }
                Stmt::StoreExt { buf, index, value } => {
                    self.record_reads(*index, idx, ctx);
                    let first_read = self.sites.len();
                    self.record_reads(*value, idx, ctx);
                    let lanes = self.lanes_of(*value);
                    let sets: Vec<IndexSet> = (0..self.nt)
                        .map(|t| self.index_set(t, *index, lanes))
                        .collect();
                    // Read-modify-write detection: the stored value reads
                    // the same element of the same buffer it overwrites.
                    let rmw = self.find_rmw_load(*value, *buf, *index);
                    let site = self.sites.len();
                    if rmw {
                        for r in &mut self.sites[first_read..] {
                            if r.buf == BufKey::Ext(*buf) && r.sets == sets {
                                r.rmw_group = Some(site);
                            }
                        }
                    }
                    self.sites.push(Site {
                        stmt_idx: idx,
                        buf: BufKey::Ext(*buf),
                        is_write: true,
                        in_critical: ctx.in_critical,
                        guarded: ctx.guards > 0,
                        phase: self.phase,
                        rmw_group: rmw.then_some(site),
                        sets,
                    });
                }
                Stmt::StoreLocal { mem, index, value } => {
                    self.record_reads(*index, idx, ctx);
                    self.record_reads(*value, idx, ctx);
                    let lanes = self.lanes_of(*value);
                    let sets = (0..self.nt)
                        .map(|t| self.index_set(t, *index, lanes))
                        .collect();
                    self.sites.push(Site {
                        stmt_idx: idx,
                        buf: BufKey::Local(*mem),
                        is_write: true,
                        in_critical: ctx.in_critical,
                        guarded: ctx.guards > 0,
                        phase: self.phase,
                        rmw_group: None,
                        sets,
                    });
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                    ..
                } => {
                    for e in [start, end, step] {
                        self.record_reads(*e, idx, ctx);
                    }
                    let slot = self.slot_trips.len() as u32;
                    let mut trips = Vec::with_capacity(self.nt);
                    for t in 0..self.nt {
                        let (binding, trip) = self.bind_loop_var(t, slot, *start, *end, *step);
                        trips.push(trip);
                        self.envs[t].insert(*var, binding);
                    }
                    self.slot_trips.push(trips);
                    self.walk_block(body, inner);
                    // The post-loop value is end-dependent; keep it opaque.
                    for t in 0..self.nt {
                        self.envs[t].insert(*var, Val::Unknown);
                    }
                }
                Stmt::If {
                    cond,
                    then_b,
                    else_b,
                } => {
                    self.record_reads(*cond, idx, ctx);
                    // A syntactically thread-dependent condition that folds
                    // to the same constant for every thread (e.g. `tid < NT`)
                    // cannot split the group: barriers under it stay uniform.
                    let divergent = expr_tainted(self.k, *cond, &self.tainted_vars)
                        && !self.cond_uniform(*cond);
                    let branch = Ctx {
                        guards: ctx.guards + 1,
                        tainted: ctx.tainted || divergent,
                        ..inner
                    };
                    self.walk_block(then_b, branch);
                    self.walk_block(else_b, branch);
                }
                Stmt::Critical { body } => {
                    self.walk_block(
                        body,
                        Ctx {
                            in_critical: true,
                            ..inner
                        },
                    );
                }
                Stmt::Barrier => {
                    self.barriers.push(BarrierSite {
                        stmt_idx: idx,
                        divergent: ctx.tainted,
                    });
                    // Only barriers every thread reaches in lockstep — the
                    // direct children of the kernel body — separate
                    // conflict phases; nested ones are kept conservative.
                    if ctx.top_level {
                        self.phase += 1;
                    }
                }
                Stmt::Preload {
                    mem,
                    src,
                    src_off,
                    dst_off,
                    len,
                } => {
                    for e in [src_off, dst_off, len] {
                        self.record_reads(*e, idx, ctx);
                    }
                    self.push_burst(idx, ctx, BufKey::Ext(*src), *src_off, *len, false);
                    self.push_burst(idx, ctx, BufKey::Local(*mem), *dst_off, *len, true);
                }
                Stmt::WriteBack {
                    mem,
                    dst,
                    dst_off,
                    src_off,
                    len,
                } => {
                    for e in [dst_off, src_off, len] {
                        self.record_reads(*e, idx, ctx);
                    }
                    self.push_burst(idx, ctx, BufKey::Local(*mem), *src_off, *len, false);
                    self.push_burst(idx, ctx, BufKey::Ext(*dst), *dst_off, *len, true);
                }
            }
        }
    }

    /// Bind a loop variable for thread `t`: affine start plus `step · q`.
    /// The trip count is exact when `end - start` and `step` are constants
    /// for this thread (`thread_id` already instantiated).
    fn bind_loop_var(
        &mut self,
        t: usize,
        slot: u32,
        start: ExprId,
        end: ExprId,
        step: ExprId,
    ) -> (Val, Option<u64>) {
        let (sv, ev, stv) = (self.eval(t, start), self.eval(t, end), self.eval(t, step));
        let (start_lin, step_c) = match (&sv, &stv) {
            (Val::Lin(s), Val::Lin(st)) => match st.as_const() {
                Some(c) if c > 0 => (s.clone(), c),
                _ => return (Val::Unknown, None),
            },
            _ => return (Val::Unknown, None),
        };
        let trip = match &ev {
            Val::Lin(e) => e.sub(&start_lin).and_then(|d| d.as_const()).map(|span| {
                if span <= 0 {
                    0
                } else {
                    (span as u64).div_ceil(step_c as u64)
                }
            }),
            Val::Unknown => None,
        };
        let binding = match start_lin.add(&Lin {
            base: 0,
            coeffs: vec![(slot, step_c)],
        }) {
            Some(l) => Val::Lin(l),
            None => Val::Unknown,
        };
        (binding, trip)
    }

    /// Record a read site for every `LoadExt`/`LoadLocal` in the expression
    /// tree rooted at `e` (the walker evaluates loads where the consuming
    /// statement executes, so that is where the access belongs).
    fn record_reads(&mut self, e: ExprId, stmt_idx: usize, ctx: Ctx) {
        let k = self.k;
        match k.expr(e) {
            Expr::LoadExt { buf, index, ty } => {
                self.record_reads(*index, stmt_idx, ctx);
                let lanes = ty.lanes as u32;
                let sets = (0..self.nt)
                    .map(|t| self.index_set(t, *index, lanes))
                    .collect();
                self.sites.push(Site {
                    stmt_idx,
                    buf: BufKey::Ext(*buf),
                    is_write: false,
                    in_critical: ctx.in_critical,
                    guarded: ctx.guards > 0,
                    phase: self.phase,
                    rmw_group: None,
                    sets,
                });
            }
            Expr::LoadLocal { mem, index, ty } => {
                self.record_reads(*index, stmt_idx, ctx);
                let lanes = ty.lanes as u32;
                let sets = (0..self.nt)
                    .map(|t| self.index_set(t, *index, lanes))
                    .collect();
                self.sites.push(Site {
                    stmt_idx,
                    buf: BufKey::Local(*mem),
                    is_write: false,
                    in_critical: ctx.in_critical,
                    guarded: ctx.guards > 0,
                    phase: self.phase,
                    rmw_group: None,
                    sets,
                });
            }
            other => {
                for c in other.children() {
                    self.record_reads(c, stmt_idx, ctx);
                }
            }
        }
    }

    /// Does the value tree of a store read the same element of `buf` that
    /// the store writes (per-thread equivalent index)?
    fn find_rmw_load(&self, value: ExprId, buf: ArgId, store_index: ExprId) -> bool {
        let k = self.k;
        match k.expr(value) {
            Expr::LoadExt { buf: b, index, .. } if *b == buf => {
                *index == store_index
                    || (0..self.nt).all(|t| {
                        let li = self.eval(t, *index);
                        let si = self.eval(t, store_index);
                        li != Val::Unknown && li == si
                    })
            }
            other => other
                .children()
                .into_iter()
                .any(|c| self.find_rmw_load(c, buf, store_index)),
        }
    }

    fn push_burst(
        &mut self,
        stmt_idx: usize,
        ctx: Ctx,
        buf: BufKey,
        off: ExprId,
        len: ExprId,
        is_write: bool,
    ) {
        let sets = (0..self.nt)
            .map(|t| {
                let base = self.eval(t, off);
                let count = match self.eval(t, len) {
                    Val::Lin(l) => match l.as_const() {
                        Some(c) if c >= 0 => Some(c as u64),
                        _ => None,
                    },
                    Val::Unknown => None,
                };
                self.set_from_val(t, base, count)
            })
            .collect();
        self.sites.push(Site {
            stmt_idx,
            buf,
            is_write,
            in_critical: ctx.in_critical,
            guarded: ctx.guards > 0,
            phase: self.phase,
            rmw_group: None,
            sets,
        });
    }

    /// Index set of `index` for thread `t`, widened by `lanes` consecutive
    /// elements (vector access width).
    fn index_set(&self, t: usize, index: ExprId, lanes: u32) -> IndexSet {
        let v = self.eval(t, index);
        let width = if lanes > 1 { Some(lanes as u64) } else { None };
        self.set_from_val(t, v, width.or(Some(1)))
    }

    /// Convert an abstract value plus a consecutive-element count into an
    /// [`IndexSet`] using this thread's per-slot trip counts.
    fn set_from_val(&self, t: usize, v: Val, span: Option<u64>) -> IndexSet {
        let lin = match v {
            Val::Lin(l) => l,
            Val::Unknown => return IndexSet::unknown(),
        };
        let mut terms: Vec<Term> = lin
            .coeffs
            .iter()
            .map(|&(slot, coeff)| Term {
                step: coeff,
                count: self.slot_trips[slot as usize][t],
            })
            .collect();
        match span {
            Some(1) => {}
            count => terms.push(Term { step: 1, count }),
        }
        IndexSet::new(lin.base, terms)
    }

    /// Vector width (lanes) of an expression, for access footprints.
    fn lanes_of(&self, e: ExprId) -> u32 {
        match self.k.expr(e) {
            Expr::Const(nymble_ir::Value::Vec(v)) => v.len() as u32,
            Expr::Const(_) | Expr::Arg(_) | Expr::ThreadId | Expr::NumThreads => 1,
            Expr::Var(v) => self.k.var(*v).ty.lanes as u32,
            Expr::Unary(_, a) | Expr::Cast(_, a) => self.lanes_of(*a),
            Expr::Binary(_, a, b) => self.lanes_of(*a).max(self.lanes_of(*b)),
            Expr::Select { then_v, else_v, .. } => {
                self.lanes_of(*then_v).max(self.lanes_of(*else_v))
            }
            Expr::LoadExt { ty, .. } | Expr::LoadLocal { ty, .. } => ty.lanes as u32,
            Expr::Lane(..) => 1,
            Expr::Splat(_, l) => *l as u32,
        }
    }

    /// Evaluate an expression to a per-thread affine value.
    fn eval(&self, t: usize, e: ExprId) -> Val {
        eval_expr(self.k, t, &self.envs[t], e)
    }

    /// Is `cond` provably the *same constant* for every thread? Such a
    /// condition cannot split the thread group, so a barrier under it is
    /// not divergent even when the condition is syntactically
    /// thread-dependent (e.g. `tid < NT`).
    fn cond_uniform(&self, cond: ExprId) -> bool {
        let mut first: Option<i64> = None;
        for t in 0..self.nt {
            match self.eval(t, cond).as_const() {
                Some(c) => match first {
                    None => first = Some(c),
                    Some(f) if f == c => {}
                    Some(_) => return false,
                },
                None => return false,
            }
        }
        first.is_some()
    }
}

/// Evaluate an expression to an affine value for thread `t` under the
/// variable environment `env`. Shared between the correctness walker
/// ([`Collector`]) and the performance model walker (`perf.rs`).
pub(crate) fn eval_expr(k: &Kernel, t: usize, env: &HashMap<VarId, Val>, e: ExprId) -> Val {
    use nymble_ir::BinOp;
    match k.expr(e) {
        Expr::Const(v) => match v {
            nymble_ir::Value::I32(x) => Val::konst(*x as i64),
            nymble_ir::Value::I64(x) => Val::konst(*x),
            _ => Val::Unknown,
        },
        // Scalar launch arguments are runtime values: opaque.
        Expr::Arg(_) => Val::Unknown,
        Expr::ThreadId => Val::konst(t as i64),
        Expr::NumThreads => Val::konst(k.num_threads as i64),
        Expr::Var(v) => env.get(v).cloned().unwrap_or(Val::Unknown),
        Expr::Unary(nymble_ir::UnOp::Neg, a) => match eval_expr(k, t, env, *a) {
            Val::Lin(l) => l.scale(-1).map(Val::Lin).unwrap_or(Val::Unknown),
            Val::Unknown => Val::Unknown,
        },
        Expr::Unary(..) => Val::Unknown,
        Expr::Binary(op, a, b) => {
            let (va, vb) = (eval_expr(k, t, env, *a), eval_expr(k, t, env, *b));
            let (la, lb) = match (va, vb) {
                (Val::Lin(la), Val::Lin(lb)) => (la, lb),
                _ => return Val::Unknown,
            };
            let r = match op {
                BinOp::Add => la.add(&lb),
                BinOp::Sub => la.sub(&lb),
                BinOp::Mul => match (la.as_const(), lb.as_const()) {
                    (Some(c), _) => lb.scale(c),
                    (_, Some(c)) => la.scale(c),
                    _ => None,
                },
                BinOp::Shl => match lb.as_const() {
                    Some(c @ 0..=62) => la.scale(1i64 << c),
                    _ => None,
                },
                // Remaining integer ops only fold when fully constant
                // (matching the walker's i64 semantics, incl. div 0 = 0).
                _ => match (la.as_const(), lb.as_const()) {
                    (Some(x), Some(y)) => match op {
                        BinOp::Div => Some(Lin::konst(if y == 0 { 0 } else { x / y })),
                        BinOp::Rem => Some(Lin::konst(if y == 0 { 0 } else { x % y })),
                        BinOp::Min => Some(Lin::konst(x.min(y))),
                        BinOp::Max => Some(Lin::konst(x.max(y))),
                        BinOp::And => Some(Lin::konst(x & y)),
                        BinOp::Or => Some(Lin::konst(x | y)),
                        BinOp::Xor => Some(Lin::konst(x ^ y)),
                        BinOp::Shr => Some(Lin::konst(x >> (y & 63))),
                        BinOp::Lt => Some(Lin::konst((x < y) as i64)),
                        BinOp::Le => Some(Lin::konst((x <= y) as i64)),
                        BinOp::Gt => Some(Lin::konst((x > y) as i64)),
                        BinOp::Ge => Some(Lin::konst((x >= y) as i64)),
                        BinOp::Eq => Some(Lin::konst((x == y) as i64)),
                        BinOp::Ne => Some(Lin::konst((x != y) as i64)),
                        _ => None,
                    },
                    _ => None,
                },
            };
            r.map(Val::Lin).unwrap_or(Val::Unknown)
        }
        Expr::Select { .. } => Val::Unknown,
        // Integer casts are value-preserving for in-range index math
        // (all kernel index arithmetic is i64); float casts lose the
        // affine shape.
        Expr::Cast(ty, a) if !ty.is_float() => eval_expr(k, t, env, *a),
        Expr::Cast(..) => Val::Unknown,
        Expr::LoadExt { .. } | Expr::LoadLocal { .. } | Expr::Lane(..) | Expr::Splat(..) => {
            Val::Unknown
        }
    }
}
