//! Structured lint diagnostics: stable codes, severities, listing spans,
//! and the two output formats (human-readable text and machine JSON).
//!
//! Codes are stable identifiers — tests, CI gates and golden files key on
//! them — so they are an enum, not free-form strings. Every diagnostic
//! carries one or more [`Span`]s that point into the pseudo-C listing
//! produced by `nymble_ir::pretty::listing`, so the human rendering can show
//! the offending source line the way a compiler would.

use std::fmt;

/// Stable diagnostic codes. The numeric part never changes meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Cross-thread write/write or write/read overlap on a shared buffer
    /// outside a `critical` section (data race).
    NL001,
    /// `barrier` under thread-dependent control flow (divergence: some
    /// threads arrive, others never do — guaranteed hardware deadlock).
    NL002,
    /// Unsynchronized read-modify-write to a `map(tofrom)` accumulator
    /// (lost update: the classic unguarded reduction).
    NL003,
    /// Provably out-of-bounds access against a declared buffer length.
    NL004,
    /// Dead `map(to)` clause: the buffer is never read by the kernel.
    NL005,
    /// Dead `map(from)` clause: the buffer is never written by the kernel.
    NL006,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 6] = [
        Code::NL001,
        Code::NL002,
        Code::NL003,
        Code::NL004,
        Code::NL005,
        Code::NL006,
    ];

    /// The stable string form (`"NL001"`…).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NL001 => "NL001",
            Code::NL002 => "NL002",
            Code::NL003 => "NL003",
            Code::NL004 => "NL004",
            Code::NL005 => "NL005",
            Code::NL006 => "NL006",
        }
    }

    /// Parse a stable string form back into a code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// Default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::NL001 | Code::NL002 | Code::NL003 | Code::NL004 => Severity::Error,
            Code::NL005 | Code::NL006 => Severity::Warning,
        }
    }

    /// One-line description of the pathology the code detects.
    pub fn title(self) -> &'static str {
        match self {
            Code::NL001 => "cross-thread data race on shared buffer",
            Code::NL002 => "barrier under thread-dependent control flow",
            Code::NL003 => "unsynchronized read-modify-write (lost update)",
            Code::NL004 => "provable out-of-bounds access",
            Code::NL005 => "dead map(to) clause: buffer never read",
            Code::NL006 => "dead map(from) clause: buffer never written",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity. `Deny` gating fails on *any* diagnostic; the
/// severity only controls presentation and the error/warning split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A location in the pseudo-C listing of the kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line in `nymble_ir::pretty::listing(kernel).text`, when the
    /// statement could be located.
    pub line: Option<u32>,
    /// The listing line, trimmed (empty when `line` is `None`).
    pub snippet: String,
    /// What this span marks ("conflicting write", "barrier", …).
    pub label: String,
}

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Deterministic, human-readable explanation (thread ids, buffer names,
    /// index ranges — never addresses or hashes).
    pub message: String,
    /// Listing locations, primary first.
    pub spans: Vec<Span>,
}

impl Diagnostic {
    pub fn new(code: Code, message: impl Into<String>, spans: Vec<Span>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            spans,
        }
    }

    /// Human rendering of a single diagnostic (multi-line, `rustc` style).
    pub fn render_human(&self, kernel: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {} — {}\n  --> kernel `{kernel}`\n",
            self.severity,
            self.code,
            self.code.title(),
            self.message
        ));
        for s in &self.spans {
            match s.line {
                Some(line) => {
                    out.push_str(&format!("  {line:>4} | {}  // {}\n", s.snippet, s.label))
                }
                None => out.push_str(&format!("       | <{}>\n", s.label)),
            }
        }
        out
    }
}

/// Minimal JSON string escaping (control chars, quotes, backslash).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// JSON object for this diagnostic with a stable field order.
    pub fn to_json(&self, kernel: &str, indent: usize) -> String {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        let span_pad = "  ".repeat(indent + 2);
        let mut spans = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            spans.push('\n');
            let line = match s.line {
                Some(l) => l.to_string(),
                None => "null".to_string(),
            };
            spans.push_str(&format!(
                "{span_pad}{{\"line\": {line}, \"snippet\": \"{}\", \"label\": \"{}\"}}",
                json_escape(&s.snippet),
                json_escape(&s.label)
            ));
        }
        if !self.spans.is_empty() {
            spans.push('\n');
            spans.push_str(&inner);
        }
        format!(
            "{pad}{{\n{inner}\"kernel\": \"{}\",\n{inner}\"code\": \"{}\",\n{inner}\"severity\": \"{}\",\n{inner}\"message\": \"{}\",\n{inner}\"spans\": [{spans}]\n{pad}}}",
            json_escape(kernel),
            self.code,
            self.severity,
            json_escape(&self.message)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_and_severity() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::NL001.severity(), Severity::Error);
        assert_eq!(Code::NL005.severity(), Severity::Warning);
        assert_eq!(Code::parse("NL999"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_has_stable_field_order() {
        let d = Diagnostic::new(
            Code::NL002,
            "barrier depends on thread id",
            vec![Span {
                line: Some(7),
                snippet: "#pragma omp barrier".into(),
                label: "divergent barrier".into(),
            }],
        );
        let j = d.to_json("k", 0);
        let ik = j.find("\"kernel\"").unwrap();
        let ic = j.find("\"code\"").unwrap();
        let is_ = j.find("\"severity\"").unwrap();
        let im = j.find("\"message\"").unwrap();
        let isp = j.find("\"spans\"").unwrap();
        assert!(ik < ic && ic < is_ && is_ < im && im < isp, "{j}");
    }
}
