//! Structured lint diagnostics: stable codes, severities, listing spans,
//! and the two output formats (human-readable text and machine JSON).
//!
//! Codes are stable identifiers — tests, CI gates and golden files key on
//! them — so they are an enum, not free-form strings. Every diagnostic
//! carries one or more [`Span`]s that point into the pseudo-C listing
//! produced by `nymble_ir::pretty::listing`, so the human rendering can show
//! the offending source line the way a compiler would.

use std::fmt;

/// Stable diagnostic codes. The numeric part never changes meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Cross-thread write/write or write/read overlap on a shared buffer
    /// outside a `critical` section (data race).
    NL001,
    /// `barrier` under thread-dependent control flow (divergence: some
    /// threads arrive, others never do — guaranteed hardware deadlock).
    NL002,
    /// Unsynchronized read-modify-write to a `map(tofrom)` accumulator
    /// (lost update: the classic unguarded reduction).
    NL003,
    /// Provably out-of-bounds access against a declared buffer length.
    NL004,
    /// Dead `map(to)` clause: the buffer is never read by the kernel.
    NL005,
    /// Dead `map(from)` clause: the buffer is never written by the kernel.
    NL006,
    /// Loop-carried recurrence on a pipelined loop inflates the initiation
    /// interval: iterations cannot overlap past the dependence chain.
    NP001,
    /// Strided external access touches a fresh DRAM line per (few)
    /// elements: line traffic is a multiple of the useful bytes.
    NP002,
    /// Dead DMA: a `Preload`d local memory is never read, or a
    /// `WriteBack` source is never written — pure bus waste.
    NP003,
    /// Critical section inside the parallel loop serializes the threads
    /// (Amdahl bound from per-thread trip counts).
    NP004,
    /// Asymmetric per-thread loop bounds imbalance the threads at a
    /// barrier: the fast threads idle until the slowest arrives.
    NP005,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 11] = [
        Code::NL001,
        Code::NL002,
        Code::NL003,
        Code::NL004,
        Code::NL005,
        Code::NL006,
        Code::NP001,
        Code::NP002,
        Code::NP003,
        Code::NP004,
        Code::NP005,
    ];

    /// The stable string form (`"NL001"`…).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NL001 => "NL001",
            Code::NL002 => "NL002",
            Code::NL003 => "NL003",
            Code::NL004 => "NL004",
            Code::NL005 => "NL005",
            Code::NL006 => "NL006",
            Code::NP001 => "NP001",
            Code::NP002 => "NP002",
            Code::NP003 => "NP003",
            Code::NP004 => "NP004",
            Code::NP005 => "NP005",
        }
    }

    /// Parse a stable string form back into a code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// Is this a performance diagnostic (`NP0xx`) rather than a
    /// correctness diagnostic (`NL0xx`)?
    pub fn is_perf(self) -> bool {
        matches!(
            self,
            Code::NP001 | Code::NP002 | Code::NP003 | Code::NP004 | Code::NP005
        )
    }

    /// Default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::NL001 | Code::NL002 | Code::NL003 | Code::NL004 => Severity::Error,
            // Performance findings never make the kernel *wrong*.
            _ => Severity::Warning,
        }
    }

    /// One-line description of the pathology the code detects.
    pub fn title(self) -> &'static str {
        match self {
            Code::NL001 => "cross-thread data race on shared buffer",
            Code::NL002 => "barrier under thread-dependent control flow",
            Code::NL003 => "unsynchronized read-modify-write (lost update)",
            Code::NL004 => "provable out-of-bounds access",
            Code::NL005 => "dead map(to) clause: buffer never read",
            Code::NL006 => "dead map(from) clause: buffer never written",
            Code::NP001 => "loop-carried recurrence inflates pipeline initiation interval",
            Code::NP002 => "strided external access multiplies DRAM line traffic",
            Code::NP003 => "dead DMA transfer: preloaded/written-back data unused",
            Code::NP004 => "critical section serializes the parallel loop (Amdahl bound)",
            Code::NP005 => "asymmetric loop bounds imbalance threads at a barrier",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity. `Deny` gating fails on *any* diagnostic; the
/// severity only controls presentation and the error/warning split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A location in the pseudo-C listing of the kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line in `nymble_ir::pretty::listing(kernel).text`, when the
    /// statement could be located.
    pub line: Option<u32>,
    /// The listing line, trimmed (empty when `line` is `None`).
    pub snippet: String,
    /// What this span marks ("conflicting write", "barrier", …).
    pub label: String,
}

/// The quantity a performance prediction is denominated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredMetric {
    /// Predicted total kernel cycles (cross-checkable against
    /// `fpga_sim::analytic::AnalyticReport::total_cycles`).
    TotalCycles,
    /// Predicted total DRAM line traffic in bytes.
    DramBytes,
    /// Bytes moved by a DMA transfer whose data is provably unused.
    WastedDmaBytes,
    /// Cycles spent strictly serialized inside critical sections
    /// (summed over threads — the Amdahl serial term).
    SerialCycles,
    /// Ratio of the busiest thread's work to the least busy thread's.
    ImbalanceRatio,
}

impl PredMetric {
    pub fn as_str(self) -> &'static str {
        match self {
            PredMetric::TotalCycles => "total_cycles",
            PredMetric::DramBytes => "dram_bytes",
            PredMetric::WastedDmaBytes => "wasted_dma_bytes",
            PredMetric::SerialCycles => "serial_cycles",
            PredMetric::ImbalanceRatio => "imbalance_ratio",
        }
    }
}

impl fmt::Display for PredMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A quantitative prediction attached to a performance diagnostic,
/// priced through the same latency/bandwidth model the analytical
/// simulator uses — so it can be confronted with a measured trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    pub metric: PredMetric,
    pub value: f64,
}

impl Prediction {
    pub fn new(metric: PredMetric, value: f64) -> Self {
        Prediction { metric, value }
    }

    /// Deterministic numeric rendering: integers without a fractional
    /// part, everything else with two decimals.
    pub fn value_str(&self) -> String {
        if self.value.fract() == 0.0 && self.value.abs() < 1e15 {
            format!("{}", self.value as i64)
        } else {
            format!("{:.2}", self.value)
        }
    }
}

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Deterministic, human-readable explanation (thread ids, buffer names,
    /// index ranges — never addresses or hashes).
    pub message: String,
    /// Listing locations, primary first.
    pub spans: Vec<Span>,
    /// Quantitative prediction (performance diagnostics only; `None` keeps
    /// the JSON output of correctness diagnostics byte-identical).
    pub prediction: Option<Prediction>,
}

impl Diagnostic {
    pub fn new(code: Code, message: impl Into<String>, spans: Vec<Span>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            spans,
            prediction: None,
        }
    }

    /// Attach a quantitative prediction.
    pub fn with_prediction(mut self, metric: PredMetric, value: f64) -> Self {
        self.prediction = Some(Prediction::new(metric, value));
        self
    }

    /// Human rendering of a single diagnostic (multi-line, `rustc` style).
    pub fn render_human(&self, kernel: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {} — {}\n  --> kernel `{kernel}`\n",
            self.severity,
            self.code,
            self.code.title(),
            self.message
        ));
        for s in &self.spans {
            match s.line {
                Some(line) => {
                    out.push_str(&format!("  {line:>4} | {}  // {}\n", s.snippet, s.label))
                }
                None => out.push_str(&format!("       | <{}>\n", s.label)),
            }
        }
        if let Some(p) = &self.prediction {
            out.push_str(&format!(
                "       = predicted {}: {}\n",
                p.metric,
                p.value_str()
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (control chars, quotes, backslash).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// JSON object for this diagnostic with a stable field order.
    pub fn to_json(&self, kernel: &str, indent: usize) -> String {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        let span_pad = "  ".repeat(indent + 2);
        let mut spans = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            spans.push('\n');
            let line = match s.line {
                Some(l) => l.to_string(),
                None => "null".to_string(),
            };
            spans.push_str(&format!(
                "{span_pad}{{\"line\": {line}, \"snippet\": \"{}\", \"label\": \"{}\"}}",
                json_escape(&s.snippet),
                json_escape(&s.label)
            ));
        }
        if !self.spans.is_empty() {
            spans.push('\n');
            spans.push_str(&inner);
        }
        // The prediction object is emitted only when present, so the JSON
        // of correctness diagnostics is byte-identical to the pre-NP era.
        let prediction = match &self.prediction {
            Some(p) => format!(
                "{inner}\"prediction\": {{\"metric\": \"{}\", \"value\": {}}},\n",
                p.metric,
                p.value_str()
            ),
            None => String::new(),
        };
        format!(
            "{pad}{{\n{inner}\"kernel\": \"{}\",\n{inner}\"code\": \"{}\",\n{inner}\"severity\": \"{}\",\n{inner}\"message\": \"{}\",\n{prediction}{inner}\"spans\": [{spans}]\n{pad}}}",
            json_escape(kernel),
            self.code,
            self.severity,
            json_escape(&self.message)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_and_severity() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::NL001.severity(), Severity::Error);
        assert_eq!(Code::NL005.severity(), Severity::Warning);
        assert_eq!(Code::parse("NL999"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_has_stable_field_order() {
        let d = Diagnostic::new(
            Code::NL002,
            "barrier depends on thread id",
            vec![Span {
                line: Some(7),
                snippet: "#pragma omp barrier".into(),
                label: "divergent barrier".into(),
            }],
        );
        let j = d.to_json("k", 0);
        let ik = j.find("\"kernel\"").unwrap();
        let ic = j.find("\"code\"").unwrap();
        let is_ = j.find("\"severity\"").unwrap();
        let im = j.find("\"message\"").unwrap();
        let isp = j.find("\"spans\"").unwrap();
        assert!(ik < ic && ic < is_ && is_ < im && im < isp, "{j}");
        // No prediction → no prediction key (byte-stable NL output).
        assert!(!j.contains("\"prediction\""), "{j}");
    }

    #[test]
    fn np_codes_are_perf_warnings_with_predictions() {
        for c in [
            Code::NP001,
            Code::NP002,
            Code::NP003,
            Code::NP004,
            Code::NP005,
        ] {
            assert!(c.is_perf());
            assert_eq!(c.severity(), Severity::Warning);
        }
        assert!(!Code::NL001.is_perf());
        let d = Diagnostic::new(Code::NP001, "II >= 8 due to recurrence on `acc`", vec![])
            .with_prediction(PredMetric::TotalCycles, 5318.0);
        let j = d.to_json("k", 0);
        let im = j.find("\"message\"").unwrap();
        let ip = j.find("\"prediction\"").unwrap();
        let isp = j.find("\"spans\"").unwrap();
        assert!(im < ip && ip < isp, "{j}");
        assert!(j.contains("\"metric\": \"total_cycles\""), "{j}");
        assert!(j.contains("\"value\": 5318"), "{j}");
        let h = d.render_human("k");
        assert!(h.contains("predicted total_cycles: 5318"), "{h}");
    }
}
