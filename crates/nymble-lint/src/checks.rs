//! The diagnostic passes (NL001–NL006) over the collected access sites.

use crate::affine::{describe, disjoint};
use crate::analysis::{analyze, BufKey, Site};
use crate::diag::{Code, Diagnostic, Span};
use crate::LintOptions;
use nymble_ir::pretty::Listing;
use nymble_ir::{ArgKind, Kernel, MapDir};
use std::collections::HashSet;

/// Run every pass and return diagnostics sorted by (listing position, code).
pub(crate) fn run_checks(k: &Kernel, opts: &LintOptions) -> Vec<Diagnostic> {
    let listing = nymble_ir::pretty::listing(k);
    let analysis = analyze(k);
    let sites = &analysis.sites;
    let nt = k.num_threads.max(1) as usize;

    // (sort position, code, diagnostic)
    let mut found: Vec<(usize, Code, Diagnostic)> = Vec::new();

    // ---- NL002: barrier under thread-dependent control flow -------------
    for b in &analysis.barriers {
        if b.divergent {
            let d = Diagnostic::new(
                Code::NL002,
                "not all threads reach this barrier: its control flow depends on the \
                 thread id, so arriving threads wait forever for the others (hardware deadlock)",
                vec![span(
                    &listing,
                    b.stmt_idx,
                    "barrier under divergent control flow",
                )],
            );
            found.push((b.stmt_idx, Code::NL002, d));
        }
    }

    // ---- NL003: unsynchronized read-modify-write (lost update) ----------
    // Runs before NL001 so the race pass can skip pairs already explained
    // by a flagged RMW group.
    let mut rmw_flagged: HashSet<usize> = HashSet::new();
    for s in sites {
        let group = match s.rmw_group {
            Some(g) if s.is_write && !s.in_critical => g,
            _ => continue,
        };
        let arg = match s.buf {
            BufKey::Ext(a) => a,
            BufKey::Local(_) => continue,
        };
        let map = match k.arg(arg).kind {
            ArgKind::Buffer { map, .. } => map,
            ArgKind::Scalar(_) => continue,
        };
        if map != MapDir::ToFrom {
            continue;
        }
        let overlap = cross_thread_overlap(s, s, nt, false);
        if let Some((t0, t1)) = overlap {
            rmw_flagged.insert(group);
            let d = Diagnostic::new(
                Code::NL003,
                format!(
                    "`{name}` is read, modified and written back outside `critical`; \
                     threads {t0} and {t1} both update {set}, so one update is lost \
                     (guard the reduction with `critical` or give each thread a \
                     private partial sum)",
                    name = k.arg(arg).name,
                    set = describe(&s.sets[t0]),
                ),
                vec![span(
                    &listing,
                    s.stmt_idx,
                    "unsynchronized read-modify-write",
                )],
            );
            found.push((s.stmt_idx, Code::NL003, d));
        }
    }

    // ---- NL001: cross-thread access overlap on a shared buffer ----------
    let mut reported: HashSet<(usize, usize, BufKey)> = HashSet::new();
    for i in 0..sites.len() {
        for j in i..sites.len() {
            let (a, b) = (&sites[i], &sites[j]);
            if a.buf != b.buf || !(a.is_write || b.is_write) || a.phase != b.phase {
                continue;
            }
            if let BufKey::Local(m) = a.buf {
                if k.local_mem(m).per_thread {
                    continue; // private storage cannot race
                }
            }
            if a.in_critical && b.in_critical {
                continue; // serialized by the semaphore
            }
            if a.rmw_group.is_some()
                && a.rmw_group == b.rmw_group
                && rmw_flagged.contains(&a.rmw_group.unwrap())
            {
                continue; // already explained as NL003
            }
            let key = (
                a.stmt_idx.min(b.stmt_idx),
                a.stmt_idx.max(b.stmt_idx),
                a.buf,
            );
            if reported.contains(&key) {
                continue;
            }
            if let Some((t0, t1)) = cross_thread_overlap(a, b, nt, i == j) {
                reported.insert(key);
                let name = buf_name(k, a.buf);
                let d = Diagnostic::new(
                    Code::NL001,
                    format!(
                        "threads {t0} and {t1} may touch the same element of `{name}` in \
                         the same barrier phase without synchronization: {ka} {sa} vs \
                         {kb} {sb}",
                        ka = rw(a.is_write),
                        sa = describe(&a.sets[t0]),
                        kb = rw(b.is_write),
                        sb = describe(&b.sets[t1]),
                    ),
                    if a.stmt_idx == b.stmt_idx {
                        vec![span(
                            &listing,
                            a.stmt_idx,
                            format!("{} here", rw(a.is_write)),
                        )]
                    } else {
                        vec![
                            span(&listing, a.stmt_idx, format!("{} here", rw(a.is_write))),
                            span(
                                &listing,
                                b.stmt_idx,
                                format!("conflicting {} here", rw(b.is_write)),
                            ),
                        ]
                    },
                );
                found.push((a.stmt_idx.min(b.stmt_idx), Code::NL001, d));
            }
        }
    }

    // ---- NL004: provable out-of-bounds --------------------------------
    for s in sites {
        if s.guarded {
            continue; // the guard may never hold: not provable
        }
        let (len, name) = match s.buf {
            BufKey::Local(m) => (Some(k.local_mem(m).len), k.local_mem(m).name.clone()),
            BufKey::Ext(a) => (
                opts.buffer_lens.get(&k.arg(a).name).copied(),
                k.arg(a).name.clone(),
            ),
        };
        let Some(len) = len else { continue };
        for t in 0..nt {
            let set = &s.sets[t];
            if !set.is_exact() {
                continue;
            }
            let (Some(lo), Some(hi)) = (set.lo(), set.hi()) else {
                continue;
            };
            if lo < 0 || hi >= len as i128 {
                let bad = if lo < 0 { lo } else { hi };
                let d = Diagnostic::new(
                    Code::NL004,
                    format!(
                        "thread {t} provably accesses `{name}[{bad}]` but `{name}` has \
                         length {len} (access set {set})",
                        set = describe(set),
                    ),
                    vec![span(&listing, s.stmt_idx, "out-of-bounds access")],
                );
                found.push((s.stmt_idx, Code::NL004, d));
                break; // one report per site
            }
        }
    }

    // ---- NL005 / NL006: dead map clauses --------------------------------
    let mut read_bufs: HashSet<BufKey> = HashSet::new();
    let mut written_bufs: HashSet<BufKey> = HashSet::new();
    for s in sites {
        if s.is_write {
            written_bufs.insert(s.buf);
        } else {
            read_bufs.insert(s.buf);
        }
    }
    for (i, arg) in k.args.iter().enumerate() {
        let map = match arg.kind {
            ArgKind::Buffer { map, .. } => map,
            ArgKind::Scalar(_) => continue,
        };
        let key = BufKey::Ext(nymble_ir::ArgId(i as u32));
        let is_read = read_bufs.contains(&key);
        let is_written = written_bufs.contains(&key);
        let sig = Span {
            line: Some(1),
            snippet: listing.text.lines().next().unwrap_or("").trim().to_string(),
            label: format!("map clause of `{}`", arg.name),
        };
        match map {
            MapDir::To if !is_read => {
                found.push((
                    0,
                    Code::NL005,
                    Diagnostic::new(
                        Code::NL005,
                        format!(
                            "`map(to: {0})` copies `{0}` to the accelerator but the \
                             kernel never reads it",
                            arg.name
                        ),
                        vec![sig],
                    ),
                ));
            }
            MapDir::ToFrom if !is_read => {
                found.push((
                    0,
                    Code::NL005,
                    Diagnostic::new(
                        Code::NL005,
                        format!(
                            "`map(tofrom: {0})` copies `{0}` in but the kernel never \
                             reads it; demote to `map(from: {0})`",
                            arg.name
                        ),
                        vec![sig],
                    ),
                ));
            }
            MapDir::From if !is_written => {
                found.push((
                    0,
                    Code::NL006,
                    Diagnostic::new(
                        Code::NL006,
                        format!(
                            "`map(from: {0})` copies `{0}` back but the kernel never \
                             writes it",
                            arg.name
                        ),
                        vec![sig],
                    ),
                ));
            }
            MapDir::ToFrom if !is_written => {
                found.push((
                    0,
                    Code::NL006,
                    Diagnostic::new(
                        Code::NL006,
                        format!(
                            "`map(tofrom: {0})` copies `{0}` back but the kernel never \
                             writes it; demote to `map(to: {0})`",
                            arg.name
                        ),
                        vec![sig],
                    ),
                ));
            }
            _ => {}
        }
    }

    found.sort_by(|x, y| {
        (x.0, x.1)
            .cmp(&(y.0, y.1))
            .then(x.2.message.cmp(&y.2.message))
    });
    found.into_iter().map(|(_, _, d)| d).collect()
}

fn rw(is_write: bool) -> &'static str {
    if is_write {
        "write"
    } else {
        "read"
    }
}

fn buf_name(k: &Kernel, b: BufKey) -> String {
    match b {
        BufKey::Ext(a) => k.arg(a).name.clone(),
        BufKey::Local(m) => k.local_mem(m).name.clone(),
    }
}

/// First thread pair `(t, t')`, `t ≠ t'`, whose index sets are not provably
/// disjoint. When `same_site` is set, only `t < t'` is considered (the pair
/// is symmetric).
fn cross_thread_overlap(a: &Site, b: &Site, nt: usize, same_site: bool) -> Option<(usize, usize)> {
    for t0 in 0..nt {
        for t1 in 0..nt {
            if t0 == t1 || (same_site && t0 >= t1) {
                continue;
            }
            if !disjoint(&a.sets[t0], &b.sets[t1]) {
                return Some((t0, t1));
            }
        }
    }
    None
}

pub(crate) fn span(listing: &Listing, stmt_idx: usize, label: impl Into<String>) -> Span {
    let line = listing.stmt_lines.get(stmt_idx).copied();
    let snippet = line
        .and_then(|l| listing.text.lines().nth(l as usize - 1))
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    Span {
        line,
        snippet,
        label: label.into(),
    }
}
