//! # nymble-lint — concurrency & memory static analyzer for kernel IR
//!
//! The paper's profiling unit explains *where* hardware threads spin, stall
//! or serialize — but only after a simulated run. A whole class of those
//! pathologies is statically decidable from the same structured IR Nymble
//! compiles, and this crate decides them before any cycle is simulated:
//!
//! | code  | severity | pathology |
//! |-------|----------|-----------|
//! | NL001 | error    | cross-thread write/write or write/read overlap on a shared buffer outside `critical` (data race) |
//! | NL002 | error    | `barrier` under thread-dependent control flow (divergence → hardware deadlock) |
//! | NL003 | error    | unsynchronized read-modify-write to a `map(tofrom)` accumulator (lost update) |
//! | NL004 | error    | provable out-of-bounds access against a declared buffer length |
//! | NL005 | warning  | dead `map(to)` clause — the buffer is never read |
//! | NL006 | warning  | dead `map(from)` clause — the buffer is never written |
//!
//! A second family of *performance* diagnostics ([`perf`], `NP0xx` codes)
//! statically predicts the bottlenecks the profiling unit would measure,
//! each carrying a quantitative prediction priced by a static mirror of
//! `fpga_sim::analytic`:
//!
//! | code  | severity | pathology |
//! |-------|----------|-----------|
//! | NP001 | warning  | loop-carried recurrence inflates the pipelined initiation interval |
//! | NP002 | warning  | strided external access multiplies DRAM line traffic |
//! | NP003 | warning  | dead DMA: `preload` never read / `write_back` never written |
//! | NP004 | warning  | critical section inside a parallel loop serializes threads (Amdahl) |
//! | NP005 | warning  | asymmetric per-thread loop bounds imbalance threads at a barrier |
//!
//! The analyzer instantiates `thread_id` per hardware thread and computes
//! per-thread affine index sets from loop bounds, unroll/vector clauses and
//! burst lengths ([`affine`]), then proves access-set disjointness with
//! interval, congruence and factor-decomposition criteria. Anything it
//! cannot prove disjoint *and* cannot prove racy is treated conservatively
//! in the sound direction for each check: NL001 reports may-races, NL004
//! only proven faults.
//!
//! Three integration layers exist: [`strict_check`] plugs into
//! `nymble_ir::builder`'s strict mode, `nymble-hls` lints before scheduling
//! (`HlsConfig::lint`), and the `nymble-lint` CLI plus the `bench` repro
//! binaries accept `--lint[=deny|warn|off]`.

pub mod affine;
mod analysis;
mod checks;
pub mod deps;
pub mod diag;
pub mod perf;

pub use diag::{Code, Diagnostic, PredMetric, Prediction, Severity, Span};
pub use perf::{pipeline_eligible, region_profits, PerfModel, PerfParams, RegionProfit};

use nymble_ir::Kernel;
use std::collections::BTreeMap;

/// How lint findings gate a compile or a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LintLevel {
    /// Do not run the analyzer.
    #[default]
    Off,
    /// Run and report, never fail.
    Warn,
    /// Run and fail on any diagnostic (warnings included).
    Deny,
}

impl LintLevel {
    /// Parse `"off" | "warn" | "deny"` (case-insensitive).
    pub fn parse(s: &str) -> Option<LintLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(LintLevel::Off),
            "warn" => Some(LintLevel::Warn),
            "deny" => Some(LintLevel::Deny),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            LintLevel::Off => "off",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        }
    }
}

impl std::fmt::Display for LintLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Optional analysis inputs that are not part of the IR.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Element counts of external buffers by argument name. The IR does not
    /// declare buffer lengths (they arrive at launch time), so NL004 checks
    /// external buffers only when a length is supplied here; local memories
    /// always declare their length and are always checked.
    pub buffer_lens: BTreeMap<String, u64>,
}

/// The result of linting one kernel.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Kernel name the diagnostics belong to.
    pub kernel: String,
    /// Findings, sorted by (listing position, code).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// No findings at all (warnings included).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Distinct codes present, in numeric order.
    pub fn codes(&self) -> Vec<Code> {
        let mut codes: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Human-readable rendering of the whole report.
    pub fn render_human(&self) -> String {
        if self.is_clean() {
            return format!("kernel `{}`: clean\n", self.kernel);
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_human(&self.kernel));
        }
        let errors = self.error_count();
        let warnings = self.diagnostics.len() - errors;
        out.push_str(&format!(
            "kernel `{}`: {errors} error(s), {warnings} warning(s)\n",
            self.kernel
        ));
        out
    }

    /// Machine-readable JSON array with a stable field order, suitable for
    /// golden-file snapshots.
    pub fn to_json(&self) -> String {
        if self.diagnostics.is_empty() {
            return "[]".to_string();
        }
        let mut out = String::from("[\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&d.to_json(&self.kernel, 1));
        }
        out.push_str("\n]");
        out
    }
}

/// Lint a kernel with default options.
pub fn lint_kernel(kernel: &Kernel) -> LintReport {
    lint_kernel_with(kernel, &LintOptions::default())
}

/// Lint a kernel with explicit [`LintOptions`].
pub fn lint_kernel_with(kernel: &Kernel, opts: &LintOptions) -> LintReport {
    LintReport {
        kernel: kernel.name.clone(),
        diagnostics: checks::run_checks(kernel, opts),
    }
}

/// Gate a kernel at `level`: `Err` carries the human-rendered report when
/// the level demands failure.
pub fn enforce(kernel: &Kernel, level: LintLevel) -> Result<LintReport, String> {
    if level == LintLevel::Off {
        return Ok(LintReport {
            kernel: kernel.name.clone(),
            diagnostics: Vec::new(),
        });
    }
    let report = lint_kernel(kernel);
    if level == LintLevel::Deny && !report.is_clean() {
        return Err(report.render_human());
    }
    Ok(report)
}

/// Run the performance diagnostics (`NP0xx`) with default pricing
/// parameters (mirroring `fpga_sim::SimConfig::default()`).
pub fn perf_lint_kernel(kernel: &Kernel) -> LintReport {
    perf_lint_kernel_with(kernel, &PerfParams::default())
}

/// Run the performance diagnostics priced against explicit [`PerfParams`].
pub fn perf_lint_kernel_with(kernel: &Kernel, params: &PerfParams) -> LintReport {
    LintReport {
        kernel: kernel.name.clone(),
        diagnostics: perf::run_perf_checks(kernel, params),
    }
}

/// Gate a kernel on the performance diagnostics at `level`. Like
/// [`enforce`], `Err` carries the rendered report only when the level
/// demands failure — note NP findings are warnings, so only
/// [`LintLevel::Deny`] ever fails.
pub fn enforce_perf(kernel: &Kernel, level: LintLevel) -> Result<LintReport, String> {
    if level == LintLevel::Off {
        return Ok(LintReport {
            kernel: kernel.name.clone(),
            diagnostics: Vec::new(),
        });
    }
    let report = perf_lint_kernel(kernel);
    if level == LintLevel::Deny && !report.is_clean() {
        return Err(report.render_human());
    }
    Ok(report)
}

/// A finish-time check for `nymble_ir::builder::KernelBuilder::set_strict_check`:
/// the builder's opt-in strict mode runs the analyzer as part of
/// `finish()`/`try_finish()`. At [`LintLevel::Warn`] findings go to stderr;
/// at [`LintLevel::Deny`] they fail the build.
pub fn strict_check(level: LintLevel) -> nymble_ir::FinishCheck {
    Box::new(move |k: &Kernel| match enforce(k, level) {
        Ok(report) => {
            if !report.is_clean() {
                eprint!("{}", report.render_human());
            }
            Ok(())
        }
        Err(rendered) => Err(format!("lint failed at level `deny`:\n{rendered}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType};

    #[test]
    fn lint_level_parses() {
        assert_eq!(LintLevel::parse("deny"), Some(LintLevel::Deny));
        assert_eq!(LintLevel::parse("WARN"), Some(LintLevel::Warn));
        assert_eq!(LintLevel::parse("off"), Some(LintLevel::Off));
        assert_eq!(LintLevel::parse("loud"), None);
        assert_eq!(LintLevel::default(), LintLevel::Off);
    }

    /// Two threads, disjoint strided writes: clean.
    fn disjoint_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("disjoint", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let tid = kb.thread_id();
        let nt = kb.num_threads_expr();
        let end = kb.c_i64(16);
        kb.for_each("i", tid, end, nt, |kb, i| {
            let v = kb.c_f32(1.0);
            kb.store(out, i, v);
        });
        kb.finish()
    }

    /// Two threads, both write the full range: racy.
    fn racy_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("racy", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let end = kb.c_i64(16);
        kb.for_range("i", end, |kb, i| {
            let v = kb.c_f32(1.0);
            kb.store(out, i, v);
        });
        kb.finish()
    }

    #[test]
    fn clean_kernel_reports_clean() {
        let r = lint_kernel(&disjoint_kernel());
        assert!(r.is_clean(), "{}", r.render_human());
        assert_eq!(r.to_json(), "[]");
    }

    #[test]
    fn race_is_detected_and_gated() {
        let r = lint_kernel(&racy_kernel());
        assert_eq!(r.codes(), vec![Code::NL001], "{}", r.render_human());
        assert!(enforce(&racy_kernel(), LintLevel::Deny).is_err());
        assert!(enforce(&racy_kernel(), LintLevel::Warn).is_ok());
        assert!(enforce(&racy_kernel(), LintLevel::Off).unwrap().is_clean());
    }

    #[test]
    fn report_renders_spans_with_lines() {
        let r = lint_kernel(&racy_kernel());
        let d = &r.diagnostics[0];
        let line = d.spans[0].line.expect("span has a line");
        assert!(d.spans[0].snippet.contains("OUT["), "{:?}", d.spans[0]);
        let human = r.render_human();
        assert!(human.contains(&format!("{line} |")), "{human}");
        assert!(human.contains("NL001"), "{human}");
    }

    #[test]
    fn strict_check_closure_gates() {
        let deny = strict_check(LintLevel::Deny);
        assert!(deny(&racy_kernel()).is_err());
        assert!(deny(&disjoint_kernel()).is_ok());
        let warn = strict_check(LintLevel::Warn);
        assert!(warn(&racy_kernel()).is_ok());
    }

    #[test]
    fn vector_lanes_widen_footprints() {
        // Thread strides of 4 with 4-lane vector stores tile exactly: clean.
        let mut kb = KernelBuilder::new("vec_tile", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let tid = kb.thread_id();
        let four = kb.c_i64(4);
        let base = kb.mul(tid, four);
        let end = kb.c_i64(16);
        let eight = kb.c_i64(8);
        kb.for_each("i", base, end, eight, |kb, i| {
            let v = kb.c_f32(0.0);
            let vv = kb.splat(v, 4);
            kb.store(out, i, vv);
        });
        let k = kb.finish();
        let r = lint_kernel(&k);
        assert!(r.is_clean(), "{}", r.render_human());

        // Widen the store to 8 lanes: tiles now overlap the next thread's.
        let mut kb = KernelBuilder::new("vec_overlap", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let tid = kb.thread_id();
        let four = kb.c_i64(4);
        let base = kb.mul(tid, four);
        let end = kb.c_i64(16);
        let eight = kb.c_i64(8);
        kb.for_each("i", base, end, eight, |kb, i| {
            let v = kb.c_f32(0.0);
            let vv = kb.splat(v, 8);
            kb.store(out, i, vv);
        });
        let k = kb.finish();
        let r = lint_kernel(&k);
        assert_eq!(r.codes(), vec![Code::NL001], "{}", r.render_human());
    }
}
