//! Affine index sets and the disjointness decision procedure.
//!
//! The analyzer instantiates `thread_id` per hardware thread, so every loop
//! whose bounds become constants contributes a *term* `step · q, q ∈ [0,
//! count)` to each index expression it reaches. An [`IndexSet`] is therefore
//! a base offset plus an independent sum of such terms — exactly the access
//! shape of the paper's kernels (strided thread decompositions, tiled loops,
//! vector lanes, preload bursts).
//!
//! Two sets are proven disjoint by any of three criteria:
//!
//! 1. **Interval**: the attainable `[lo, hi]` ranges do not intersect.
//! 2. **Congruence**: with `m = gcd` of every step in both sets, all
//!    elements of a set are `≡ base (mod m)`; different residues ⇒ disjoint.
//! 3. **Factor decomposition**: pick a factor `F` (a step magnitude); if
//!    both sets split as `F·quotient + remainder` with remainders confined
//!    to `[0, F)`, the sets are disjoint when the quotient sets *or* the
//!    remainder sets are (recursively) disjoint. This is what separates
//!    `C[i·dim + j]` accesses by row and then by the thread stride inside a
//!    row.
//!
//! Everything is conservative: `unknown` sets overlap everything,
//! `empty` sets (a loop with zero trip count for this thread) overlap
//! nothing.

/// One independent affine term: contributes `step · q` for `q ∈ [0, count)`.
/// `count == None` means the trip count is unknown (unbounded for interval
/// purposes, still usable for congruence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Term {
    pub step: i64,
    pub count: Option<u64>,
}

/// The set of element indices one access site touches for one thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSet {
    pub base: i64,
    pub terms: Vec<Term>,
    /// Top: the index is not affine — any element may be touched.
    pub unknown: bool,
    /// Bottom: the access never executes for this thread (zero-trip loop).
    pub empty: bool,
}

impl IndexSet {
    /// The unanalyzable set (overlaps everything).
    pub fn unknown() -> Self {
        IndexSet {
            base: 0,
            terms: Vec::new(),
            unknown: true,
            empty: false,
        }
    }

    /// The never-executed set (overlaps nothing).
    pub fn empty() -> Self {
        IndexSet {
            base: 0,
            terms: Vec::new(),
            unknown: false,
            empty: true,
        }
    }

    /// A single concrete index.
    pub fn singleton(base: i64) -> Self {
        IndexSet {
            base,
            terms: Vec::new(),
            unknown: false,
            empty: false,
        }
    }

    /// Build from a base and raw terms, dropping degenerate ones.
    /// A term with `count == Some(0)` makes the whole set empty.
    pub fn new(base: i64, raw: Vec<Term>) -> Self {
        let mut terms = Vec::new();
        for t in raw {
            match t.count {
                Some(0) => return IndexSet::empty(),
                Some(1) => {} // q = 0 only: contributes nothing
                _ if t.step == 0 => {}
                _ => terms.push(t),
            }
        }
        terms.sort_by_key(|t| (t.step.abs(), t.step, t.count));
        IndexSet {
            base,
            terms,
            unknown: false,
            empty: false,
        }
    }

    /// `true` when the attainable bounds are exact: no unknown shape and
    /// every term has a known trip count. Exact sets attain both `lo()` and
    /// `hi()`, which is what makes NL004 a *proof* rather than a may-fact.
    pub fn is_exact(&self) -> bool {
        !self.unknown && !self.empty && self.terms.iter().all(|t| t.count.is_some())
    }

    /// Smallest attainable index (`None` = unbounded below / unknown).
    pub fn lo(&self) -> Option<i128> {
        if self.unknown || self.empty {
            return None;
        }
        let mut lo = self.base as i128;
        for t in &self.terms {
            if t.step >= 0 {
                continue; // q = 0 minimises
            }
            match t.count {
                Some(c) => lo += t.step as i128 * (c as i128 - 1),
                None => return None,
            }
        }
        Some(lo)
    }

    /// Largest attainable index (`None` = unbounded above / unknown).
    pub fn hi(&self) -> Option<i128> {
        if self.unknown || self.empty {
            return None;
        }
        let mut hi = self.base as i128;
        for t in &self.terms {
            if t.step <= 0 {
                continue;
            }
            match t.count {
                Some(c) => hi += t.step as i128 * (c as i128 - 1),
                None => return None,
            }
        }
        Some(hi)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Criterion 1: attainable intervals do not intersect.
fn interval_disjoint(a: &IndexSet, b: &IndexSet) -> bool {
    match (a.hi(), b.lo()) {
        (Some(ah), Some(bl)) if ah < bl => return true,
        _ => {}
    }
    match (b.hi(), a.lo()) {
        (Some(bh), Some(al)) if bh < al => return true,
        _ => {}
    }
    false
}

/// Criterion 2: all steps share a common modulus `m ≥ 2` and the bases fall
/// in different residue classes.
fn congruence_disjoint(a: &IndexSet, b: &IndexSet) -> bool {
    let mut m: u64 = 0;
    for t in a.terms.iter().chain(b.terms.iter()) {
        m = gcd(m, t.step.unsigned_abs());
    }
    m >= 2 && (a.base.rem_euclid(m as i64) != b.base.rem_euclid(m as i64))
}

/// Split `s` as `F · quotient + remainder` where the remainder part is
/// provably confined to `[0, F)`. Returns `None` when the remainder cannot
/// be confined (then the factorisation tells us nothing).
fn split(s: &IndexSet, f: i64) -> Option<(IndexSet, IndexSet)> {
    debug_assert!(f >= 2);
    let base_rem = s.base.rem_euclid(f);
    let base_quo = s.base.div_euclid(f);
    let mut quo_terms = Vec::new();
    let mut rem = IndexSet::new(base_rem, Vec::new());
    for t in &s.terms {
        if t.step % f == 0 {
            quo_terms.push(Term {
                step: t.step / f,
                count: t.count,
            });
        } else {
            rem.terms.push(*t);
        }
    }
    rem.terms.sort_by_key(|t| (t.step.abs(), t.step, t.count));
    // The remainder must provably stay inside [0, F).
    let (lo, hi) = (rem.lo()?, rem.hi()?);
    if !rem.is_exact() || lo < 0 || hi >= f as i128 {
        return None;
    }
    Some((IndexSet::new(base_quo, quo_terms), rem))
}

/// Criterion 3 driver: try every step magnitude of either set as a factor.
fn factor_disjoint(a: &IndexSet, b: &IndexSet, depth: u32) -> bool {
    let mut factors: Vec<i64> = a
        .terms
        .iter()
        .chain(b.terms.iter())
        .map(|t| t.step.abs())
        .filter(|&f| f >= 2)
        .collect();
    factors.sort_unstable();
    factors.dedup();
    // Largest factors first: they correspond to the outermost dimension.
    for &f in factors.iter().rev() {
        if let (Some((qa, ra)), Some((qb, rb))) = (split(a, f), split(b, f)) {
            // x = F·q + r with r ∈ [0, F) is unique, so the sets intersect
            // iff the quotient sets AND the remainder sets both intersect.
            if disjoint_at(&qa, &qb, depth + 1) || disjoint_at(&ra, &rb, depth + 1) {
                return true;
            }
        }
    }
    false
}

fn disjoint_at(a: &IndexSet, b: &IndexSet, depth: u32) -> bool {
    if a.empty || b.empty {
        return true;
    }
    if a.unknown || b.unknown {
        return false;
    }
    if interval_disjoint(a, b) || congruence_disjoint(a, b) {
        return true;
    }
    if depth < 8 && factor_disjoint(a, b, depth) {
        return true;
    }
    false
}

/// Are the two sets provably disjoint?
pub fn disjoint(a: &IndexSet, b: &IndexSet) -> bool {
    disjoint_at(a, b, 0)
}

/// Human rendering of a set for diagnostics: `{base + 4·[0,8) + 1·[0,4)}`.
pub fn describe(s: &IndexSet) -> String {
    if s.unknown {
        return "{unknown}".to_string();
    }
    if s.empty {
        return "{}".to_string();
    }
    let mut out = format!("{{{}", s.base);
    for t in &s.terms {
        match t.count {
            Some(c) => out.push_str(&format!(" + {}·[0,{})", t.step, c)),
            None => out.push_str(&format!(" + {}·[0,∞)", t.step)),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(base: i64, terms: &[(i64, Option<u64>)]) -> IndexSet {
        IndexSet::new(
            base,
            terms
                .iter()
                .map(|&(step, count)| Term { step, count })
                .collect(),
        )
    }

    #[test]
    fn interval_criterion() {
        // [0, 7] vs [8, 15]
        let a = set(0, &[(1, Some(8))]);
        let b = set(8, &[(1, Some(8))]);
        assert!(disjoint(&a, &b));
        assert!(!disjoint(&a, &a));
    }

    #[test]
    fn congruence_criterion() {
        // {0, 2, 4, …} vs {1, 3, 5, …}: same interval, different parity.
        let a = set(0, &[(2, Some(100))]);
        let b = set(1, &[(2, Some(100))]);
        assert!(disjoint(&a, &b));
        let c = set(2, &[(2, Some(100))]);
        assert!(!disjoint(&a, &c));
    }

    #[test]
    fn congruence_with_unknown_counts() {
        // Unknown trip counts still allow modular reasoning.
        let a = set(0, &[(4, None)]);
        let b = set(2, &[(4, None)]);
        assert!(disjoint(&a, &b));
    }

    #[test]
    fn factor_criterion_row_major() {
        // Threads t=0 and t=1 of C[i·16 + j], i = t + 2q, j ∈ [0,16):
        // rows have different parity, columns cover the full row.
        let t0 = set(0, &[(32, Some(8)), (1, Some(16))]);
        let t1 = set(16, &[(32, Some(8)), (1, Some(16))]);
        assert!(disjoint(&t0, &t1));
        // Same thread overlaps itself.
        assert!(!disjoint(&t0, &t0));
    }

    #[test]
    fn factor_criterion_requires_confined_remainder() {
        // j ∈ [0, 20) spills out of a row of 16: no proof, must overlap.
        let t0 = set(0, &[(32, Some(8)), (1, Some(20))]);
        let t1 = set(16, &[(32, Some(8)), (1, Some(20))]);
        assert!(!disjoint(&t0, &t1));
    }

    #[test]
    fn nested_factor_blocked_tiles() {
        // Blocked GEMM write-back: dim=16, bs=8, NT=2.
        // Thread t writes rows {t·8 + 16·q + r : r ∈ [0,8)}, cols [0,16)…
        // flattened: base t·8·16, terms 256·q, 16·r, 1·e.
        let t0 = set(0, &[(256, Some(1)), (16, Some(8)), (1, Some(8))]);
        let t1 = set(128, &[(256, Some(1)), (16, Some(8)), (1, Some(8))]);
        assert!(disjoint(&t0, &t1));
    }

    #[test]
    fn empty_and_unknown() {
        let e = IndexSet::empty();
        let u = IndexSet::unknown();
        let a = set(0, &[(1, Some(4))]);
        assert!(disjoint(&e, &a));
        assert!(disjoint(&e, &u));
        assert!(!disjoint(&u, &a));
        // Zero-count term collapses to empty.
        assert!(set(5, &[(3, Some(0))]).empty);
    }

    #[test]
    fn exactness_and_bounds() {
        let a = set(4, &[(8, Some(3)), (-1, Some(2))]);
        assert!(a.is_exact());
        assert_eq!(a.lo(), Some(3));
        assert_eq!(a.hi(), Some(20));
        let b = set(4, &[(8, None)]);
        assert!(!b.is_exact());
        assert_eq!(b.lo(), Some(4));
        assert_eq!(b.hi(), None);
    }

    #[test]
    fn describe_is_stable() {
        let a = set(3, &[(16, Some(8)), (1, None)]);
        assert_eq!(describe(&a), "{3 + 1·[0,∞) + 16·[0,8)}");
    }
}
