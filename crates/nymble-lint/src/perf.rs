//! Performance diagnostics (`NP0xx`): a static mirror of the analytical
//! performance model in `fpga_sim::analytic`, plus the passes that turn
//! its intermediate quantities into actionable findings.
//!
//! The walker prices the kernel exactly the way the analytical simulator
//! does — per-thread busy cycles, DRAM line traffic, critical-section
//! serialization, launch ramp — but needs no compiled accelerator: the
//! pipelined initiation interval comes from the symbolic recurrence
//! analysis in [`crate::deps`], and loop pipelining eligibility is decided
//! structurally (no nested sequential region in the body). The resulting
//! [`PerfModel`] is what every diagnostic's quantitative prediction is
//! priced against, and what `bench` cross-validates against
//! `fpga_sim::analytic` within 25% on the triggering fixtures.

use crate::deps;
use crate::diag::{Code, Diagnostic, PredMetric};
use nymble_ir::stmt::Unroll;
use nymble_ir::{Expr, ExprId, Kernel, Stmt, Value, VarId};
use std::collections::HashMap;

/// The latency/bandwidth parameters the model prices against. Defaults
/// mirror `fpga_sim::SimConfig::default()`; `hls-profiling` rebuilds one
/// from the actual run's `SimConfig` when confronting predictions with a
/// measured trace.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfParams {
    pub dram_latency: u64,
    pub dram_bytes_per_cycle: u64,
    pub dram_line_bytes: u64,
    pub launch_interval: u64,
    pub sem_acquire_latency: u64,
    pub sem_release_latency: u64,
    pub barrier_latency: u64,
    pub seq_issue_width: u64,
    pub stmt_base_cost: u64,
    pub burst_issue_cost: u64,
    pub assumed_load_latency: u64,
    pub dma_setup: u64,
    pub line_buffers: bool,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            dram_latency: 48,
            dram_bytes_per_cycle: 64,
            dram_line_bytes: 64,
            launch_interval: 880_000,
            sem_acquire_latency: 12,
            sem_release_latency: 4,
            barrier_latency: 8,
            seq_issue_width: 4,
            stmt_base_cost: 1,
            burst_issue_cost: 4,
            assumed_load_latency: 8,
            dma_setup: 12,
            line_buffers: true,
        }
    }
}

impl PerfParams {
    /// The benchmark harness's fast-launch setting
    /// (`SimConfig::with_fast_launch`).
    pub fn with_launch_interval(mut self, v: u64) -> Self {
        self.launch_interval = v;
        self
    }
}

/// The static performance model's summary for one kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfModel {
    /// Predicted busy cycles per thread (compute vs DMA max, like
    /// `AnalyticReport::per_thread`).
    pub per_thread: Vec<u64>,
    /// Predicted DRAM line traffic in bytes, all threads.
    pub dram_bytes: u64,
    /// Predicted serialized critical-section cycles, summed over threads.
    pub critical_cycles: u64,
    /// Predicted total cycles (launch ramp vs serialization vs bandwidth
    /// floor, like `AnalyticReport::total_cycles`).
    pub total_cycles: u64,
}

/// Price the kernel under `p`. `None` when loop bounds are not statically
/// resolvable (scalar launch arguments, data-dependent trips).
pub fn model(k: &Kernel, p: &PerfParams) -> Option<PerfModel> {
    let nt = k.num_threads.max(1) as usize;
    let mut per_thread = Vec::with_capacity(nt);
    let mut dram_bytes = 0u64;
    let mut critical_cycles = 0u64;
    for t in 0..nt {
        let mut w = CostWalker::new(k, p, t as i64);
        let c = w.block_cost(&k.body)?;
        per_thread.push(c.cycles.max(c.dma_busy));
        dram_bytes += c.dram_bytes;
        critical_cycles += c.critical;
    }
    let ramp_span = per_thread
        .iter()
        .enumerate()
        .map(|(t, &c)| t as u64 * p.launch_interval + c)
        .max()
        .unwrap_or(0);
    let memory_floor = dram_bytes / p.dram_bytes_per_cycle.max(1);
    let total_cycles = ramp_span.max(critical_cycles).max(memory_floor);
    Some(PerfModel {
        per_thread,
        dram_bytes,
        critical_cycles,
        total_cycles,
    })
}

/// Statically derived instrumentation profit of one region-forming
/// statement (loop nest / critical section / DMA burst), summed over all
/// hardware threads. Keyed by the statement's address — the same idiom as
/// [`nymble_ir::loops::LoopMap`], so the map is only valid for the exact `Kernel`
/// value it was computed from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionProfit {
    /// Busy cycles spent under the region, all threads.
    pub cycles: u64,
    /// DRAM line traffic attributable to the region, all threads.
    pub dram_bytes: u64,
    /// Serialized critical-section cycles under the region.
    pub critical_cycles: u64,
    /// DMA engine busy cycles under the region.
    pub dma_cycles: u64,
}

impl RegionProfit {
    /// Scalar stall-exposure score the counter-selection optimizer ranks
    /// regions by: busy cycles plus the serialization and DMA exposure
    /// plus the bandwidth-floor cycles of the region's line traffic. Every
    /// term is monotone in a componentwise-larger profit, so an enclosing
    /// region never scores below any region nested inside it.
    pub fn score(&self, dram_bytes_per_cycle: u64) -> u64 {
        self.cycles
            + self.critical_cycles
            + self.dma_cycles
            + self.dram_bytes / dram_bytes_per_cycle.max(1)
    }
}

/// Per-region profits under `p`: walk every thread exactly like [`model`]
/// and record the subtree cost of each loop, critical section and DMA
/// burst against the statement's address. `None` when the kernel's loop
/// bounds are not statically resolvable (same condition as [`model`]).
pub fn region_profits(k: &Kernel, p: &PerfParams) -> Option<HashMap<usize, RegionProfit>> {
    let nt = k.num_threads.max(1) as usize;
    let mut sums: HashMap<usize, RegionProfit> = HashMap::new();
    for t in 0..nt {
        let mut w = CostWalker::new(k, p, t as i64);
        w.recorded = Some(HashMap::new());
        w.block_cost(&k.body)?;
        for (key, c) in w.recorded.take().unwrap() {
            let e = sums.entry(key).or_default();
            e.cycles += c.cycles;
            e.dram_bytes += c.dram_bytes;
            e.critical_cycles += c.critical;
            e.dma_cycles += c.dma_busy;
        }
    }
    Some(sums)
}

// ---------------------------------------------------------------------------
// The cost walker (static mirror of `fpga_sim::analytic`).
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
struct Cost {
    cycles: u64,
    dram_bytes: u64,
    critical: u64,
    dma_busy: u64,
}

impl Cost {
    fn add(&mut self, o: Cost) {
        self.cycles += o.cycles;
        self.dram_bytes += o.dram_bytes;
        self.critical += o.critical;
        self.dma_busy += o.dma_busy;
    }
    fn scale(&self, n: u64) -> Cost {
        Cost {
            cycles: self.cycles * n,
            dram_bytes: self.dram_bytes * n,
            critical: self.critical * n,
            dma_busy: self.dma_busy * n,
        }
    }
}

/// Sequential loops at most this long are walked iteration by iteration
/// (same constant as the analytical simulator's `EXACT_SEQ_TRIP`).
const EXACT_SEQ_TRIP: u64 = 16;

struct CostWalker<'k> {
    k: &'k Kernel,
    p: &'k PerfParams,
    tid: i64,
    bindings: Vec<Option<i64>>,
    approx: Vec<bool>,
    /// When `Some`, subtree costs of region-forming statements accumulate
    /// here, keyed by statement address (see [`region_profits`]).
    recorded: Option<HashMap<usize, Cost>>,
    /// Iteration multiplier of the enclosing extrapolated/unrolled loops:
    /// blocks walked once but executed `scale` times record scaled costs.
    scale: u64,
}

impl<'k> CostWalker<'k> {
    fn new(k: &'k Kernel, p: &'k PerfParams, tid: i64) -> Self {
        CostWalker {
            k,
            p,
            tid,
            bindings: vec![None; k.vars.len()],
            approx: vec![false; k.vars.len()],
            recorded: None,
            scale: 1,
        }
    }

    /// Accumulate one region-forming statement's subtree cost (times the
    /// enclosing extrapolation multiplier) when recording is on.
    fn record(&mut self, s: &Stmt, c: Cost) {
        let scale = self.scale;
        if let Some(map) = self.recorded.as_mut() {
            map.entry(s as *const Stmt as usize)
                .or_default()
                .add(c.scale(scale));
        }
    }

    fn block_cost(&mut self, block: &[Stmt]) -> Option<Cost> {
        let mut total = Cost::default();
        for s in block {
            total.add(self.stmt_cost(s)?);
        }
        Some(total)
    }

    fn stmt_cost(&mut self, s: &Stmt) -> Option<Cost> {
        let p = self.p;
        match s {
            Stmt::Assign { .. } | Stmt::StoreLocal { .. } => Some(Cost {
                cycles: self.seq_stmt_cycles(s),
                ..Default::default()
            }),
            Stmt::StoreExt { value, .. } => {
                let bytes = expr_bytes(self.k, *value) as u64;
                Some(Cost {
                    cycles: self.seq_stmt_cycles(s),
                    dram_bytes: bytes.max(p.dram_line_bytes / 2),
                    ..Default::default()
                })
            }
            Stmt::Preload { mem, len, .. } | Stmt::WriteBack { mem, len, .. } => {
                let n = self.eval_i64(*len)? as u64;
                let elem = self.k.local_mem(*mem).elem.size_bytes() as u64;
                let bytes = n * elem;
                let occupancy = bytes.max(1).div_ceil(p.dram_bytes_per_cycle.max(1));
                let out = Cost {
                    cycles: p.burst_issue_cost + p.stmt_base_cost,
                    dram_bytes: bytes,
                    critical: 0,
                    dma_busy: p.dma_setup + occupancy,
                };
                self.record(s, out);
                Some(out)
            }
            Stmt::Critical { body } => {
                let inner = self.block_cost(body)?;
                let c = p.sem_acquire_latency + inner.cycles + p.sem_release_latency;
                let out = Cost {
                    cycles: c,
                    dram_bytes: inner.dram_bytes,
                    critical: c,
                    dma_busy: inner.dma_busy,
                };
                self.record(s, out);
                Some(out)
            }
            Stmt::Barrier => Some(Cost {
                cycles: p.barrier_latency,
                ..Default::default()
            }),
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let mut out = Cost {
                    cycles: self.seq_stmt_cycles(s),
                    ..Default::default()
                };
                let resolved = if self.uses_bound_var(*cond) {
                    None
                } else {
                    self.eval_i64(*cond)
                };
                match resolved {
                    Some(c) => out.add(self.block_cost(if c != 0 { then_b } else { else_b })?),
                    None => {
                        let a = self.block_cost(then_b)?;
                        let b = self.block_cost(else_b)?;
                        out.add(if a.cycles >= b.cycles { a } else { b });
                    }
                }
                Some(out)
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
                unroll,
            } => {
                let s0 = self.eval_i64(*start)?;
                let e0 = self.eval_i64(*end)?;
                let st = self.eval_i64(*step)?;
                if st == 0 {
                    return None;
                }
                let trip = if st > 0 {
                    ((e0 - s0).max(0) as u64).div_ceil(st as u64)
                } else {
                    ((s0 - e0).max(0) as u64).div_ceil((-st) as u64)
                };
                let slot = var.0 as usize;
                let saved = self.bindings[slot];
                let saved_approx = self.approx[slot];
                self.bindings[slot] = Some(s0);
                self.approx[slot] = true;
                let out = if *unroll == Unroll::Full {
                    let saved_scale = self.scale;
                    self.scale = saved_scale.saturating_mul(trip);
                    let c = self.block_cost(body);
                    self.scale = saved_scale;
                    c.map(|c| c.scale(trip))
                } else {
                    self.loop_cost(s, trip, (s0, st), body)
                };
                self.bindings[slot] = saved;
                self.approx[slot] = saved_approx;
                if let Some(c) = out {
                    self.record(s, c);
                }
                out
            }
        }
    }

    fn loop_cost(
        &mut self,
        stmt: &Stmt,
        trip: u64,
        (s0, st): (i64, i64),
        body: &[Stmt],
    ) -> Option<Cost> {
        let p = self.p;
        if trip == 0 {
            return Some(Cost::default());
        }
        if pipeline_eligible(body) {
            let ii = deps::recurrence_ii(self.k, body);
            let depth = body_depth(self.k, body).max(p.assumed_load_latency);
            let tr = self.iter_traffic(stmt, body);
            let bw = p.dram_bytes_per_cycle.max(1);
            let mem_ii = tr.line_bytes * self.k.num_threads as u64 / bw;
            let eff_ii = (ii + tr.lat_iter).max(mem_ii);
            Some(Cost {
                cycles: depth + (trip - 1) * eff_ii,
                dram_bytes: tr.line_bytes * trip,
                critical: 0,
                dma_busy: 0,
            })
        } else {
            if trip <= EXACT_SEQ_TRIP {
                let slot = match stmt {
                    Stmt::For { var, .. } => var.0 as usize,
                    _ => unreachable!("loop_cost on non-For"),
                };
                let saved_approx = self.approx[slot];
                self.approx[slot] = false;
                let mut total = Cost::default();
                for it in 0..trip {
                    self.bindings[slot] = Some(s0 + it as i64 * st);
                    let Some(c) = self.block_cost(body) else {
                        self.approx[slot] = saved_approx;
                        return None;
                    };
                    total.add(c);
                    total.cycles += 1; // LoopIter handshake
                }
                self.approx[slot] = saved_approx;
                total.cycles += 1; // LoopExit
                return Some(total);
            }
            let saved_scale = self.scale;
            self.scale = saved_scale.saturating_mul(trip);
            let body_c = self.block_cost(body);
            self.scale = saved_scale;
            let body_c = body_c?;
            let per_iter = body_c.cycles + 1;
            Some(Cost {
                cycles: trip * per_iter + 1,
                dram_bytes: body_c.dram_bytes * trip,
                critical: body_c.critical * trip,
                dma_busy: body_c.dma_busy * trip,
            })
        }
    }

    /// Per-iteration DRAM traffic of a pipelined loop body (mirror of
    /// `analytic::iter_traffic`, including the line-buffer stride rules
    /// and the shared-stream contention term).
    fn iter_traffic(&mut self, stmt: &Stmt, body: &[Stmt]) -> IterTraffic {
        let line = self.p.dram_line_bytes;
        let bw = self.p.dram_bytes_per_cycle.max(1);
        let miss_stall =
            (line.div_ceil(bw) + self.p.dram_latency).saturating_sub(self.p.assumed_load_latency);
        let mut out = IterTraffic::default();
        let (var, start, step) = match stmt {
            Stmt::For {
                var, start, step, ..
            } => (*var, *start, *step),
            _ => return out,
        };
        let (Some(s0), Some(st)) = (self.eval_i64(start), self.eval_i64(step)) else {
            return out;
        };
        let mut accesses = Vec::new();
        collect_ext_accesses(self.k, body, &mut accesses);
        let mut shared_miss_streams = 0u64;
        for a in accesses {
            let slot = var.0 as usize;
            let saved = self.bindings[slot];
            self.bindings[slot] = Some(s0);
            let i0 = self.eval_i64(a.index);
            self.bindings[slot] = Some(s0 + st);
            let i1 = self.eval_i64(a.index);
            self.bindings[slot] = saved;
            let stride_bytes = match (i0, i1) {
                (Some(x), Some(y)) => (y - x).unsigned_abs() * a.bytes as u64,
                _ => line,
            };
            let lat = if self.p.line_buffers && stride_bytes < line {
                out.line_bytes += stride_bytes.max(a.bytes as u64).min(line);
                miss_stall * stride_bytes / line
            } else {
                out.line_bytes += line;
                if !a.is_write && self.shared_across_threads(var, start, a.index, i0) {
                    shared_miss_streams += 1;
                }
                miss_stall
            };
            if !a.is_write {
                out.lat_iter = out.lat_iter.max(lat);
            }
        }
        let nt = self.k.num_threads as u64;
        if nt > 1 && shared_miss_streams > 0 {
            out.lat_iter += (nt - 1) * shared_miss_streams * line.div_ceil(bw);
        }
        out
    }

    fn shared_across_threads(
        &mut self,
        var: VarId,
        start: ExprId,
        index: ExprId,
        i0: Option<i64>,
    ) -> bool {
        let Some(i0) = i0 else { return false };
        let tid_saved = self.tid;
        let slot = var.0 as usize;
        let saved = self.bindings[slot];
        self.tid = (tid_saved + 1) % self.k.num_threads as i64;
        let alt = self.eval_i64(start).and_then(|s| {
            self.bindings[slot] = Some(s);
            self.eval_i64(index)
        });
        self.bindings[slot] = saved;
        self.tid = tid_saved;
        alt == Some(i0)
    }

    fn seq_stmt_cycles(&self, s: &Stmt) -> u64 {
        let work = stmt_op_count(self.k, s);
        let line = self.p.dram_line_bytes;
        let bw = self.p.dram_bytes_per_cycle.max(1);
        let miss = line.div_ceil(bw) + self.p.dram_latency;
        let loads = stmt_ext_loads(self.k, s);
        self.p.stmt_base_cost + work.div_ceil(self.p.seq_issue_width.max(1)) + loads * miss
    }

    fn uses_bound_var(&self, id: ExprId) -> bool {
        match self.k.expr(id) {
            Expr::Var(v) => self.bindings[v.0 as usize].is_some() && self.approx[v.0 as usize],
            e => e.children().into_iter().any(|c| self.uses_bound_var(c)),
        }
    }

    /// Best-effort constant evaluation under the thread id and loop
    /// bindings. Unlike the analytical simulator there are no launch
    /// scalars at lint time, so `Arg` is always opaque.
    fn eval_i64(&self, id: ExprId) -> Option<i64> {
        match self.k.expr(id) {
            Expr::Const(v) => Some(v.as_i64()),
            Expr::ThreadId => Some(self.tid),
            Expr::NumThreads => Some(self.k.num_threads as i64),
            Expr::Arg(_) => None,
            Expr::Var(v) => self.bindings[v.0 as usize],
            Expr::Cast(_, a) => self.eval_i64(*a),
            Expr::Unary(op, a) => {
                let av = self.eval_i64(*a)?;
                Some(nymble_ir::expr::eval_unop(*op, &Value::I64(av)).as_i64())
            }
            Expr::Binary(op, a, b) => {
                let av = self.eval_i64(*a)?;
                let bv = self.eval_i64(*b)?;
                if matches!(*op, nymble_ir::BinOp::Div | nymble_ir::BinOp::Rem) && bv == 0 {
                    return None;
                }
                Some(nymble_ir::expr::eval_binop(*op, &Value::I64(av), &Value::I64(bv)).as_i64())
            }
            Expr::Select {
                cond,
                then_v,
                else_v,
            } => {
                let c = self.eval_i64(*cond)?;
                if c != 0 {
                    self.eval_i64(*then_v)
                } else {
                    self.eval_i64(*else_v)
                }
            }
            _ => None,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct IterTraffic {
    line_bytes: u64,
    lat_iter: u64,
}

/// Can the loop body be pipelined? Structural mirror of the scheduler's
/// decision: any nested sequential region (inner non-unrolled loop,
/// critical section, barrier, DMA burst) forces sequential execution.
/// Public so `nymble-hls`'s region analysis classifies loop regions the
/// same way the profit model priced them.
pub fn pipeline_eligible(body: &[Stmt]) -> bool {
    body.iter().all(|s| match s {
        Stmt::For { body, unroll, .. } => *unroll == Unroll::Full && pipeline_eligible(body),
        Stmt::Critical { .. } | Stmt::Barrier | Stmt::Preload { .. } | Stmt::WriteBack { .. } => {
            false
        }
        Stmt::If { then_b, else_b, .. } => pipeline_eligible(then_b) && pipeline_eligible(else_b),
        _ => true,
    })
}

/// Crude pipeline-depth estimate: the summed operator-chain latency of the
/// body's statements (an upper bound; negligible against `(trip−1)·II`).
fn body_depth(k: &Kernel, body: &[Stmt]) -> u64 {
    body.iter()
        .map(|s| match s {
            Stmt::Assign { expr, .. } => deps::expr_chain_latency(k, *expr),
            Stmt::StoreExt { index, value, .. } | Stmt::StoreLocal { index, value, .. } => {
                deps::expr_chain_latency(k, *index).max(deps::expr_chain_latency(k, *value)) + 1
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                deps::expr_chain_latency(k, *cond)
                    + body_depth(k, then_b).max(body_depth(k, else_b))
            }
            Stmt::For { body, .. } => body_depth(k, body),
            _ => 0,
        })
        .sum()
}

/// One external access inside a pipelined loop body.
#[derive(Clone, Copy, Debug)]
struct ExtAccess {
    buf: nymble_ir::ArgId,
    index: ExprId,
    bytes: u32,
    is_write: bool,
}

fn collect_ext_accesses(kernel: &Kernel, block: &[Stmt], out: &mut Vec<ExtAccess>) {
    fn walk_expr(kernel: &Kernel, id: ExprId, out: &mut Vec<ExtAccess>) {
        match kernel.expr(id) {
            Expr::LoadExt { buf, index, ty } => {
                out.push(ExtAccess {
                    buf: *buf,
                    index: *index,
                    bytes: ty.size_bytes(),
                    is_write: false,
                });
                walk_expr(kernel, *index, out);
            }
            e => {
                for c in e.children() {
                    walk_expr(kernel, c, out);
                }
            }
        }
    }
    for s in block {
        match s {
            Stmt::Assign { expr, .. } => walk_expr(kernel, *expr, out),
            Stmt::StoreExt { buf, index, value } => {
                out.push(ExtAccess {
                    buf: *buf,
                    index: *index,
                    bytes: kernel.buffer_elem_size(*buf),
                    is_write: true,
                });
                walk_expr(kernel, *index, out);
                walk_expr(kernel, *value, out);
            }
            Stmt::StoreLocal { index, value, .. } => {
                walk_expr(kernel, *index, out);
                walk_expr(kernel, *value, out);
            }
            Stmt::If { then_b, else_b, .. } => {
                collect_ext_accesses(kernel, then_b, out);
                collect_ext_accesses(kernel, else_b, out);
            }
            Stmt::For { body, unroll, .. } if *unroll == Unroll::Full => {
                collect_ext_accesses(kernel, body, out);
            }
            _ => {}
        }
    }
}

/// Scalar-operation count of one statement's expressions (mirror of
/// `analytic::stmt_op_count`): `LoadExt` is excluded — it is priced as a
/// miss by `stmt_ext_loads`, not as issue work.
fn stmt_op_count(k: &Kernel, s: &Stmt) -> u64 {
    fn expr_ops(k: &Kernel, id: ExprId) -> u64 {
        let own = match k.expr(id) {
            Expr::Unary(..)
            | Expr::Binary(..)
            | Expr::Cast(..)
            | Expr::Select { .. }
            | Expr::LoadLocal { .. } => 1,
            _ => 0,
        };
        own + k
            .expr(id)
            .children()
            .into_iter()
            .map(|c| expr_ops(k, c))
            .sum::<u64>()
    }
    match s {
        Stmt::Assign { expr, .. } => expr_ops(k, *expr),
        Stmt::StoreExt { index, value, .. } | Stmt::StoreLocal { index, value, .. } => {
            expr_ops(k, *index) + expr_ops(k, *value)
        }
        Stmt::If { cond, .. } => expr_ops(k, *cond),
        Stmt::For {
            start, end, step, ..
        } => expr_ops(k, *start) + expr_ops(k, *end) + expr_ops(k, *step),
        _ => 0,
    }
}

/// Number of external loads in one statement's expressions (each is a
/// full DRAM round-trip in sequential mode).
fn stmt_ext_loads(k: &Kernel, s: &Stmt) -> u64 {
    fn expr_loads(k: &Kernel, id: ExprId) -> u64 {
        let own = matches!(k.expr(id), Expr::LoadExt { .. }) as u64;
        own + k
            .expr(id)
            .children()
            .into_iter()
            .map(|c| expr_loads(k, c))
            .sum::<u64>()
    }
    match s {
        Stmt::Assign { expr, .. } => expr_loads(k, *expr),
        Stmt::StoreExt { index, value, .. } | Stmt::StoreLocal { index, value, .. } => {
            expr_loads(k, *index) + expr_loads(k, *value)
        }
        Stmt::If { cond, .. } => expr_loads(k, *cond),
        Stmt::For {
            start, end, step, ..
        } => expr_loads(k, *start) + expr_loads(k, *end) + expr_loads(k, *step),
        _ => 0,
    }
}

fn expr_bytes(k: &Kernel, id: ExprId) -> u32 {
    match k.expr(id) {
        Expr::Const(v) => v.ty().size_bytes(),
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// The finding passes.
// ---------------------------------------------------------------------------

/// A finding located by pre-order statement index, priced later against
/// the [`PerfModel`].
struct Pending {
    stmt_idx: usize,
    code: Code,
    message: String,
    label: &'static str,
    /// Metric the prediction is denominated in, plus a direct value when
    /// the finding computes one itself (`NP003`/`NP005`); model-priced
    /// codes fill the value at emit time.
    metric: PredMetric,
    direct_value: Option<f64>,
}

struct Finder<'k> {
    k: &'k Kernel,
    nt: usize,
    /// One cost walker per thread, used purely for per-thread constant
    /// evaluation under the current loop bindings.
    threads: Vec<CostWalker<'k>>,
    stmt_idx: usize,
    pending: Vec<Pending>,
    first_top_barrier: Option<usize>,
    /// Per local memory: is it read (`LoadLocal`) / written (`StoreLocal`)
    /// anywhere in the kernel?
    mem_read: Vec<bool>,
    mem_written: Vec<bool>,
    /// Per-thread product of enclosing non-unrolled loop trip counts
    /// (`None` = unresolvable).
    trip_prod: Vec<Option<u64>>,
}

/// Run the performance passes, returning diagnostics sorted by listing
/// position. All `NP` codes are warnings: they flag *slow*, not *wrong*.
pub(crate) fn run_perf_checks(k: &Kernel, p: &PerfParams) -> Vec<Diagnostic> {
    let nt = k.num_threads.max(1) as usize;
    let mut mem_read = vec![false; k.local_mems.len()];
    let mut mem_written = vec![false; k.local_mems.len()];
    mark_local_usage(k, &k.body, &mut mem_read, &mut mem_written);
    let mut f = Finder {
        k,
        nt,
        threads: (0..nt).map(|t| CostWalker::new(k, p, t as i64)).collect(),
        stmt_idx: 0,
        pending: Vec::new(),
        first_top_barrier: None,
        mem_read,
        mem_written,
        trip_prod: vec![Some(1); nt],
    };
    f.walk_block(&k.body, true);

    let m = model(k, p);

    // NP005: thread imbalance at a barrier, from the model's per-thread
    // busy cycles (needs both a rendezvous point and a resolvable model).
    if let (Some(bar), Some(m)) = (f.first_top_barrier, m.as_ref()) {
        if nt >= 2 {
            let max = m.per_thread.iter().copied().max().unwrap_or(0);
            let min = m.per_thread.iter().copied().min().unwrap_or(0);
            let ratio = max as f64 / (min.max(1)) as f64;
            if ratio >= 1.5 {
                f.pending.push(Pending {
                    stmt_idx: bar,
                    code: Code::NP005,
                    message: format!(
                        "threads are imbalanced at this barrier: predicted busy-cycle \
                         ratio {ratio:.2} (max {max} vs min {min} cycles); the fast \
                         threads idle until the slowest arrives"
                    ),
                    label: "barrier",
                    metric: PredMetric::ImbalanceRatio,
                    direct_value: Some((ratio * 100.0).round() / 100.0),
                });
            }
        }
    }

    let listing = nymble_ir::pretty::listing(k);
    let mut out: Vec<(usize, Code, Diagnostic)> = Vec::new();
    for pend in f.pending {
        let mut d = Diagnostic::new(
            pend.code,
            pend.message,
            vec![crate::checks::span(&listing, pend.stmt_idx, pend.label)],
        );
        let value = match (pend.direct_value, m.as_ref()) {
            (Some(v), _) => Some(v),
            (None, Some(m)) => Some(match pend.metric {
                PredMetric::TotalCycles => m.total_cycles as f64,
                PredMetric::DramBytes => m.dram_bytes as f64,
                PredMetric::SerialCycles => m.critical_cycles as f64,
                PredMetric::WastedDmaBytes | PredMetric::ImbalanceRatio => {
                    unreachable!("always priced directly")
                }
            }),
            (None, None) => None,
        };
        if let Some(v) = value {
            d = d.with_prediction(pend.metric, v);
        }
        out.push((pend.stmt_idx, pend.code, d));
    }
    out.sort_by(|a, b| {
        (a.0, a.1)
            .cmp(&(b.0, b.1))
            .then(a.2.message.cmp(&b.2.message))
    });
    out.into_iter().map(|(_, _, d)| d).collect()
}

fn mark_local_usage(k: &Kernel, block: &[Stmt], read: &mut [bool], written: &mut [bool]) {
    fn expr_reads(k: &Kernel, e: ExprId, read: &mut [bool]) {
        if let Expr::LoadLocal { mem, .. } = k.expr(e) {
            read[mem.0 as usize] = true;
        }
        for c in k.expr(e).children() {
            expr_reads(k, c, read);
        }
    }
    for s in block {
        match s {
            Stmt::Assign { expr, .. } => expr_reads(k, *expr, read),
            Stmt::StoreExt { index, value, .. } => {
                expr_reads(k, *index, read);
                expr_reads(k, *value, read);
            }
            Stmt::StoreLocal { mem, index, value } => {
                written[mem.0 as usize] = true;
                expr_reads(k, *index, read);
                expr_reads(k, *value, read);
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                expr_reads(k, *cond, read);
                mark_local_usage(k, then_b, read, written);
                mark_local_usage(k, else_b, read, written);
            }
            Stmt::For {
                start,
                end,
                step,
                body,
                ..
            } => {
                for e in [start, end, step] {
                    expr_reads(k, *e, read);
                }
                mark_local_usage(k, body, read, written);
            }
            Stmt::Critical { body } => mark_local_usage(k, body, read, written),
            // DMA endpoints themselves don't count as compute usage: that
            // is exactly what NP003 is probing.
            Stmt::Barrier | Stmt::Preload { .. } | Stmt::WriteBack { .. } => {}
        }
    }
}

impl<'k> Finder<'k> {
    fn walk_block(&mut self, block: &[Stmt], top_level: bool) {
        for s in block {
            let idx = self.stmt_idx;
            self.stmt_idx += 1;
            match s {
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                    unroll,
                } => {
                    // Per-thread trip counts and first-iteration bindings.
                    let mut trips: Vec<Option<u64>> = Vec::with_capacity(self.nt);
                    let mut saved = Vec::with_capacity(self.nt);
                    for w in &mut self.threads {
                        let s0 = w.eval_i64(*start);
                        let e0 = w.eval_i64(*end);
                        let st = w.eval_i64(*step);
                        let trip = match (s0, e0, st) {
                            (Some(s0), Some(e0), Some(st)) if st > 0 => {
                                Some(((e0 - s0).max(0) as u64).div_ceil(st as u64))
                            }
                            (Some(s0), Some(e0), Some(st)) if st < 0 => {
                                Some(((s0 - e0).max(0) as u64).div_ceil((-st) as u64))
                            }
                            _ => None,
                        };
                        trips.push(trip);
                        let slot = var.0 as usize;
                        saved.push((w.bindings[slot], w.approx[slot]));
                        w.bindings[slot] = s0;
                        w.approx[slot] = true;
                    }
                    let max_trip = trips.iter().filter_map(|t| *t).max().unwrap_or(0);

                    if *unroll == Unroll::None && pipeline_eligible(body) && max_trip >= 2 {
                        self.check_recurrence(idx, var, body, max_trip);
                        self.check_strides(idx, s, body, max_trip);
                    }

                    // Track enclosing trips for NP004 (critical entries).
                    let saved_prod = self.trip_prod.clone();
                    if *unroll == Unroll::None {
                        for (t, trip) in trips.iter().enumerate() {
                            self.trip_prod[t] = match (self.trip_prod[t], trip) {
                                (Some(a), Some(b)) => Some(a * b),
                                _ => None,
                            };
                        }
                    }
                    self.walk_block(body, false);
                    self.trip_prod = saved_prod;
                    for (w, (b, a)) in self.threads.iter_mut().zip(saved) {
                        let slot = var.0 as usize;
                        w.bindings[slot] = b;
                        w.approx[slot] = a;
                    }
                }
                Stmt::If { then_b, else_b, .. } => {
                    self.walk_block(then_b, false);
                    self.walk_block(else_b, false);
                }
                Stmt::Critical { body } => {
                    self.check_critical(idx);
                    self.walk_block(body, false);
                }
                Stmt::Barrier if top_level && self.first_top_barrier.is_none() => {
                    self.first_top_barrier = Some(idx);
                }
                Stmt::Preload { mem, len, .. } if !self.mem_read[mem.0 as usize] => {
                    self.check_dead_dma(idx, *mem, *len, true);
                }
                Stmt::WriteBack { mem, len, .. } if !self.mem_written[mem.0 as usize] => {
                    self.check_dead_dma(idx, *mem, *len, false);
                }
                _ => {}
            }
        }
    }

    /// NP001: a pipelined loop whose recurrence chain exceeds one cycle
    /// cannot start an iteration per cycle — II is at least the chain.
    fn check_recurrence(&mut self, idx: usize, var: &VarId, body: &[Stmt], max_trip: u64) {
        let recs = deps::body_recurrences(self.k, body);
        let Some(worst) = recs.first() else { return };
        if worst.latency < 2 {
            return;
        }
        let kind = if worst.through_memory {
            "memory-carried"
        } else {
            "loop-carried"
        };
        self.pending.push(Pending {
            stmt_idx: idx,
            code: Code::NP001,
            message: format!(
                "II >= {} due to recurrence on `{}`: pipelined loop over `{}` \
                 (trip {}) carries a {}-cycle {} dependence chain, so iterations \
                 cannot overlap past it",
                worst.latency,
                worst.name,
                self.k.var(*var).name,
                max_trip,
                worst.latency,
                kind
            ),
            label: "pipelined loop with recurrence",
            metric: PredMetric::TotalCycles,
            direct_value: None,
        });
    }

    /// NP002: a strided stream in a pipelined loop touches a fresh DRAM
    /// line every few elements, multiplying line traffic over the useful
    /// payload.
    fn check_strides(&mut self, idx: usize, stmt: &Stmt, body: &[Stmt], max_trip: u64) {
        let line = self.threads[0].p.dram_line_bytes;
        let (var, start, step) = match stmt {
            Stmt::For {
                var, start, step, ..
            } => (*var, *start, *step),
            _ => return,
        };
        let mut accesses = Vec::new();
        collect_ext_accesses(self.k, body, &mut accesses);
        let mut flagged: Vec<(nymble_ir::ArgId, u64)> = Vec::new();
        for a in accesses {
            // Evaluate the stride on the first thread whose loop resolves.
            let mut stride_bytes = None;
            for w in &mut self.threads {
                let (Some(s0), Some(st)) = (w.eval_i64(start), w.eval_i64(step)) else {
                    continue;
                };
                let slot = var.0 as usize;
                let saved = w.bindings[slot];
                w.bindings[slot] = Some(s0);
                let i0 = w.eval_i64(a.index);
                w.bindings[slot] = Some(s0 + st);
                let i1 = w.eval_i64(a.index);
                w.bindings[slot] = saved;
                if let (Some(x), Some(y)) = (i0, i1) {
                    stride_bytes = Some((y - x).unsigned_abs() * a.bytes as u64);
                    break;
                }
            }
            let Some(stride_bytes) = stride_bytes else {
                continue;
            };
            // Line traffic per access vs useful payload.
            let line_contrib = if stride_bytes < line {
                stride_bytes.max(a.bytes as u64).min(line)
            } else {
                line
            };
            let mult = line_contrib / (a.bytes as u64).max(1);
            // Small multipliers (2–3×) are usually the thread-decomposition
            // stride itself — threads interleave and jointly cover each
            // line — so only report from 4× up.
            if mult < 4 {
                continue;
            }
            let key = (a.buf, stride_bytes);
            if flagged.contains(&key) {
                continue;
            }
            flagged.push(key);
            let stride_elems = stride_bytes / (a.bytes as u64).max(1);
            self.pending.push(Pending {
                stmt_idx: idx,
                code: Code::NP002,
                message: format!(
                    "stride-{} access to `{}`: ~{}x line traffic ({} bytes of \
                     DRAM line fetched per {}-byte element, trip {})",
                    stride_elems,
                    self.k.arg(a.buf).name,
                    mult,
                    line_contrib,
                    a.bytes,
                    max_trip
                ),
                label: "strided external access",
                metric: PredMetric::DramBytes,
                direct_value: None,
            });
        }
    }

    /// NP004: a critical section entered on every iteration of a parallel
    /// loop serializes the threads on the hardware semaphore.
    fn check_critical(&mut self, idx: usize) {
        if self.nt < 2 {
            return;
        }
        // A critical entered once per thread is the cheapest correct way
        // to merge partials — only repeated entries (inside a loop with
        // trip ≥ 2) indicate a serialization pattern worth flagging.
        if !self.trip_prod.iter().any(|t| t.is_some_and(|v| v >= 2)) {
            return;
        }
        let entries: Option<u64> = self
            .trip_prod
            .iter()
            .try_fold(0u64, |acc, t| t.map(|v| acc + v));
        match entries {
            Some(total) if total >= 2 => {
                self.pending.push(Pending {
                    stmt_idx: idx,
                    code: Code::NP004,
                    message: format!(
                        "critical section executes {} times across {} threads; every \
                         entry serializes on the hardware semaphore (Amdahl bound: \
                         the serial term grows with thread count instead of shrinking)",
                        total, self.nt
                    ),
                    label: "critical section",
                    metric: PredMetric::SerialCycles,
                    direct_value: None,
                });
            }
            _ => {}
        }
    }

    /// NP003: DMA whose payload is provably unused.
    fn check_dead_dma(
        &mut self,
        idx: usize,
        mem: nymble_ir::LocalMemId,
        len: ExprId,
        preload: bool,
    ) {
        let elem = self.k.local_mem(mem).elem.size_bytes() as u64;
        let wasted: Option<u64> = self.threads.iter().try_fold(0u64, |acc, w| {
            w.eval_i64(len).map(|n| acc + n.max(0) as u64 * elem)
        });
        let name = &self.k.local_mem(mem).name;
        let message = if preload {
            format!(
                "preload into `{name}` is dead: no compute reads `{name}`, so the \
                 DMA burst only burns DRAM bandwidth"
            )
        } else {
            format!(
                "write-back from `{name}` is dead: no compute writes `{name}`, so \
                 the DMA copies untouched BRAM contents back to DRAM"
            )
        };
        self.pending.push(Pending {
            stmt_idx: idx,
            code: Code::NP003,
            message,
            label: if preload {
                "dead preload"
            } else {
                "dead write-back"
            },
            metric: PredMetric::WastedDmaBytes,
            direct_value: wasted.map(|w| w as f64),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    #[test]
    fn model_prices_a_simple_pipelined_reduction() {
        let mut kb = KernelBuilder::new("red", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let acc = kb.var("acc", Type::F32);
        let n = kb.c_i64(100);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(acc);
            let s = kb.add(cur, v);
            kb.set(acc, s);
        });
        let k = kb.finish();
        let p = PerfParams::default().with_launch_interval(200);
        let m = model(&k, &p).expect("resolvable");
        assert_eq!(m.per_thread.len(), 1);
        // 100 sequential f32 loads: at least 4 bytes of line traffic each.
        assert!(m.dram_bytes >= 400, "dram {}", m.dram_bytes);
        // II ≥ FAdd latency → at least (trip−1)·4 cycles.
        assert!(m.per_thread[0] >= 99 * 4, "busy {}", m.per_thread[0]);
    }

    #[test]
    fn unresolvable_scalar_bound_returns_none() {
        let mut kb = KernelBuilder::new("dyn", 1);
        let n = kb.scalar_arg("N", ScalarType::I64);
        let bound = kb.arg(n);
        kb.for_range("i", bound, |_, _| {});
        let k = kb.finish();
        assert!(model(&k, &PerfParams::default()).is_none());
    }

    #[test]
    fn recurrence_loop_is_flagged_np001() {
        let mut kb = KernelBuilder::new("rec", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::From);
        let acc = kb.var("acc", Type::F32);
        let n = kb.c_i64(64);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(acc);
            let s = kb.add(cur, v);
            kb.set(acc, s);
        });
        let tid = kb.thread_id();
        let fin = kb.get(acc);
        kb.store(c, tid, fin);
        let k = kb.finish();
        let ds = run_perf_checks(&k, &PerfParams::default());
        assert!(
            ds.iter().any(|d| d.code == Code::NP001),
            "expected NP001 in {ds:?}"
        );
        let d = ds.iter().find(|d| d.code == Code::NP001).unwrap();
        assert!(d.message.contains("II >= 4"), "{}", d.message);
        assert!(d.prediction.is_some());
    }

    #[test]
    fn region_profits_nest_monotonically() {
        // outer sequential loop { inner pipelined loop; critical }: the
        // outer region's profit must dominate both nested regions'.
        let mut kb = KernelBuilder::new("nest", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
        let acc = kb.var("acc", Type::F32);
        let rows = kb.c_i64(8);
        let cols = kb.c_i64(64);
        kb.for_range("i", rows, |kb, _i| {
            kb.for_range("j", cols, |kb, j| {
                let v = kb.load(a, j, Type::F32);
                let cur = kb.get(acc);
                let s = kb.add(cur, v);
                kb.set(acc, s);
            });
            kb.critical(|kb| {
                let zero = kb.c_i64(0);
                let cur = kb.load(c, zero, Type::F32);
                let mine = kb.get(acc);
                let s = kb.add(cur, mine);
                kb.store(c, zero, s);
            });
        });
        let k = kb.finish();
        let p = PerfParams::default();
        let profits = region_profits(&k, &p).expect("resolvable");
        let outer = &k.body[0];
        let Stmt::For { body, .. } = outer else {
            panic!("outer loop expected");
        };
        let inner = &body[0];
        let crit = &body[1];
        assert!(matches!(inner, Stmt::For { .. }));
        assert!(matches!(crit, Stmt::Critical { .. }));
        let key = |s: &Stmt| s as *const Stmt as usize;
        let po = profits[&key(outer)];
        let pi = profits[&key(inner)];
        let pc = profits[&key(crit)];
        assert!(po.cycles >= pi.cycles + pc.cycles, "{po:?} {pi:?} {pc:?}");
        assert!(po.dram_bytes >= pi.dram_bytes);
        assert_eq!(po.critical_cycles, pc.critical_cycles);
        assert!(pc.critical_cycles > 0, "critical section serializes");
        let bw = p.dram_bytes_per_cycle;
        assert!(po.score(bw) >= pi.score(bw).max(pc.score(bw)));
        // Profits are summed over both threads: the model's single-thread
        // walk of the same loop must not exceed the two-thread total.
        assert!(po.cycles > pi.cycles, "outer adds critical + handshakes");
    }

    #[test]
    fn region_profits_none_when_unresolvable() {
        let mut kb = KernelBuilder::new("dyn", 1);
        let n = kb.scalar_arg("N", ScalarType::I64);
        let bound = kb.arg(n);
        kb.for_range("i", bound, |_, _| {});
        let k = kb.finish();
        assert!(region_profits(&k, &PerfParams::default()).is_none());
    }

    #[test]
    fn extrapolated_loop_scales_inner_region_profit() {
        // A long (trip > EXACT_SEQ_TRIP) sequential outer loop is walked
        // once and extrapolated; the critical inside must still be priced
        // per full execution count (trip × per-entry cost).
        let mut kb = KernelBuilder::new("extr", 1);
        let c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
        let n = kb.c_i64(100);
        kb.for_range("i", n, |kb, i| {
            kb.critical(|kb| {
                let cur = kb.load(c, i, Type::F32);
                kb.store(c, i, cur);
            });
        });
        let k = kb.finish();
        let p = PerfParams::default();
        let profits = region_profits(&k, &p).expect("resolvable");
        let outer = &k.body[0];
        let Stmt::For { body, .. } = outer else {
            panic!("outer loop expected");
        };
        let crit = &body[0];
        let pc = profits[&(crit as *const Stmt as usize)];
        let per_entry = p.sem_acquire_latency + p.sem_release_latency;
        assert!(
            pc.critical_cycles >= 100 * per_entry,
            "expected ≥ trip × per-entry serialization, got {pc:?}"
        );
    }

    #[test]
    fn unit_stride_loop_is_clean() {
        let mut kb = KernelBuilder::new("copy", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::From);
        let n = kb.c_i64(64);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            kb.store(c, i, v);
        });
        let k = kb.finish();
        let ds = run_perf_checks(&k, &PerfParams::default());
        // Same-index store is a memory recurrence of the *store's own*
        // element; a plain copy has none (value doesn't read C).
        assert!(ds.is_empty(), "{ds:?}");
    }
}
