//! Property suite over randomly generated, valid-by-construction kernels.
//!
//! The generator composes the structures the analyzer reasons about —
//! strided loops, full-range loops, critical reductions, top-level and
//! conditional barriers — with random shapes. The properties are about the
//! analyzer's *contract*, not about which kernels are racy:
//!
//! 1. the analyzer never panics on a valid kernel;
//! 2. linting is deterministic (same kernel → byte-identical JSON);
//! 3. `Off` never analyzes, `Warn` never fails, `Deny` fails exactly when
//!    diagnostics exist;
//! 4. every reported code renders into both the human and JSON output.

use miniprop::{forall, Rng};
use nymble_ir::{BinOp, Kernel, KernelBuilder, MapDir, ScalarType, Type};
use nymble_lint::{enforce, lint_kernel, LintLevel};

/// Build a random valid kernel. Every shape this emits passes
/// `nymble_ir::validate` by construction: barriers stay at top level or
/// under an `if`, criticals never nest and never contain barriers.
fn random_kernel(rng: &mut Rng) -> Kernel {
    let threads = rng.range_u32(1, 4);
    let mut kb = KernelBuilder::new("prop", threads);
    let nbufs = rng.range_usize(1, 3);
    let bufs: Vec<_> = (0..nbufs)
        .map(|i| {
            let map = *rng.pick(&[MapDir::To, MapDir::From, MapDir::ToFrom]);
            kb.buffer(&format!("B{i}"), ScalarType::F32, map)
        })
        .collect();
    let nstmts = rng.range_usize(1, 4);
    for _ in 0..nstmts {
        let buf = *rng.pick(&bufs);
        let n = rng.range_i64(1, 16);
        match rng.range_u32(0, 5) {
            // Disjoint strided writes: i = tid, tid+NT, …
            0 => {
                let tid = kb.thread_id();
                let nt = kb.num_threads_expr();
                let end = kb.c_i64(n);
                kb.for_each("i", tid, end, nt, |kb, i| {
                    let v = kb.c_f32(1.0);
                    kb.store(buf, i, v);
                });
            }
            // Full-range writes (racy when threads > 1).
            1 => {
                let end = kb.c_i64(n);
                kb.for_range("i", end, |kb, i| {
                    let v = kb.c_f32(2.0);
                    kb.store(buf, i, v);
                });
            }
            // Read-modify-write, guarded or not.
            2 => {
                let guarded = rng.bool();
                let body = |kb: &mut KernelBuilder| {
                    let zero = kb.c_i64(0);
                    let cur = kb.load(buf, zero, Type::F32);
                    let one = kb.c_f32(1.0);
                    let next = kb.add(cur, one);
                    kb.store(buf, zero, next);
                };
                if guarded {
                    kb.critical(body);
                } else {
                    body(&mut kb);
                }
            }
            // Strided reads into a private variable.
            3 => {
                let v = kb.var(&format!("x{n}"), Type::F32);
                let tid = kb.thread_id();
                let nt = kb.num_threads_expr();
                let end = kb.c_i64(n);
                kb.for_each("i", tid, end, nt, |kb, i| {
                    let ld = kb.load(buf, i, Type::F32);
                    kb.set(v, ld);
                });
            }
            // A barrier: top-level, or divergent under a tid condition.
            _ => {
                if rng.bool() {
                    kb.barrier();
                } else {
                    let tid = kb.thread_id();
                    let zero = kb.c_i64(0);
                    let cond = kb.bin(BinOp::Eq, tid, zero);
                    kb.if_then(cond, |kb| kb.barrier());
                }
            }
        }
    }
    kb.finish()
}

#[test]
fn lint_never_panics_and_is_deterministic() {
    forall(200, |rng| {
        let k = random_kernel(rng);
        let first = lint_kernel(&k);
        let second = lint_kernel(&k);
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "non-deterministic JSON for kernel:\n{}",
            first.render_human()
        );
    });
}

#[test]
fn levels_gate_consistently() {
    forall(200, |rng| {
        let k = random_kernel(rng);
        let report = lint_kernel(&k);
        // Off: no analysis, always clean, always Ok.
        let off = enforce(&k, LintLevel::Off).expect("off never fails");
        assert!(off.is_clean());
        // Warn: reports the same findings, never fails.
        let warn = enforce(&k, LintLevel::Warn).expect("warn never fails");
        assert_eq!(warn.codes(), report.codes());
        // Deny: fails exactly when diagnostics exist.
        assert_eq!(
            enforce(&k, LintLevel::Deny).is_err(),
            !report.is_clean(),
            "deny gate disagrees with the report:\n{}",
            report.render_human()
        );
    });
}

#[test]
fn every_code_surfaces_in_both_renderings() {
    forall(200, |rng| {
        let k = random_kernel(rng);
        let report = lint_kernel(&k);
        let human = report.render_human();
        let json = report.to_json();
        for code in report.codes() {
            assert!(human.contains(code.as_str()), "{human}");
            assert!(json.contains(code.as_str()), "{json}");
        }
    });
}

#[test]
fn single_thread_kernels_never_race() {
    // With one hardware thread there is no cross-thread interleaving:
    // NL001/NL002/NL003 are impossible by definition.
    forall(100, |rng| {
        let threads = 1;
        let mut kb = KernelBuilder::new("solo", threads);
        let buf = kb.buffer("B", ScalarType::F32, MapDir::ToFrom);
        let n = rng.range_i64(1, 16);
        let end = kb.c_i64(n);
        kb.for_range("i", end, |kb, i| {
            let cur = kb.load(buf, i, Type::F32);
            let one = kb.c_f32(1.0);
            let next = kb.add(cur, one);
            kb.store(buf, i, next);
        });
        if rng.bool() {
            kb.barrier();
        }
        let report = lint_kernel(&kb.finish());
        for code in report.codes() {
            assert!(
                !matches!(code.as_str(), "NL001" | "NL002" | "NL003"),
                "impossible concurrency finding on 1 thread:\n{}",
                report.render_human()
            );
        }
    });
}
