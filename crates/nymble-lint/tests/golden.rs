//! Golden-file snapshots of the JSON diagnostic output.
//!
//! `LintReport::to_json` is the machine interface consumed by CI and by any
//! editor tooling built on the CLI — its field order, span layout and
//! messages are a contract. Each buggy fixture's JSON is pinned under
//! `tests/golden/<name>.json`; regenerate intentionally with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p nymble-lint --test golden
//! ```

use nymble_lint::{lint_kernel, perf_lint_kernel};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn buggy_fixture_json_matches_golden_snapshots() {
    let dir = golden_dir();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut expected_files = Vec::new();
    for f in kernels::fixtures::buggy() {
        let report = if f.perf {
            perf_lint_kernel(&f.kernel)
        } else {
            lint_kernel(&f.kernel)
        };
        let json = report.to_json() + "\n";
        let path = dir.join(format!("{}.json", f.name));
        expected_files.push(format!("{}.json", f.name));
        if update {
            std::fs::write(&path, &json).expect("write golden file");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            want,
            json,
            "JSON output for `{}` drifted from {}; if intentional, \
             regenerate with UPDATE_GOLDEN=1",
            f.name,
            path.display()
        );
    }
    // No stale snapshots for fixtures that no longer exist.
    for entry in std::fs::read_dir(&dir).expect("read golden dir") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            expected_files.contains(&name),
            "stale golden file {name}; delete it or add its fixture"
        );
    }
}

#[test]
fn clean_reports_serialize_to_the_empty_array() {
    for f in kernels::fixtures::near_misses() {
        let report = if f.perf {
            perf_lint_kernel(&f.kernel)
        } else {
            lint_kernel(&f.kernel)
        };
        assert_eq!(report.to_json(), "[]", "{}", f.name);
    }
}
