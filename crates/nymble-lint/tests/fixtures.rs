//! Every diagnostic code ships with a minimal triggering fixture and a
//! near-miss that must lint clean (`kernels::fixtures`). This suite pins
//! both directions: the analyzer finds exactly what each buggy fixture
//! declares — no more, no less — and stays silent on the near-misses.
//!
//! Fixtures are routed by family: correctness fixtures (`NL0xx`) run the
//! correctness analyzer, performance fixtures (`NP0xx`) run the perf
//! analyzer *and* must be correctness-clean, since the registry CLI lints
//! them under both families.

use nymble_lint::{lint_kernel, perf_lint_kernel, LintLevel};

#[test]
fn buggy_fixtures_produce_exactly_their_codes() {
    for f in kernels::fixtures::buggy() {
        let report = if f.perf {
            perf_lint_kernel(&f.kernel)
        } else {
            lint_kernel(&f.kernel)
        };
        let got: Vec<&str> = report.codes().iter().map(|c| c.as_str()).collect();
        assert_eq!(
            got,
            f.expect,
            "fixture `{}`:\n{}",
            f.name,
            report.render_human()
        );
    }
}

#[test]
fn near_miss_fixtures_lint_clean() {
    for f in kernels::fixtures::near_misses() {
        let report = if f.perf {
            perf_lint_kernel(&f.kernel)
        } else {
            lint_kernel(&f.kernel)
        };
        assert!(
            report.is_clean(),
            "near-miss `{}` must be clean:\n{}",
            f.name,
            report.render_human()
        );
    }
}

#[test]
fn perf_fixtures_are_correctness_clean() {
    for f in kernels::fixtures::all().iter().filter(|f| f.perf) {
        let report = lint_kernel(&f.kernel);
        assert!(
            report.is_clean(),
            "perf fixture `{}` must carry no NL findings:\n{}",
            f.name,
            report.render_human()
        );
    }
}

#[test]
fn perf_diagnostics_carry_quantitative_predictions() {
    // Every NP finding on the triggering fixtures must come with its
    // priced prediction — that is the family's whole contract.
    for f in kernels::fixtures::buggy().iter().filter(|f| f.perf) {
        let report = perf_lint_kernel(&f.kernel);
        for d in &report.diagnostics {
            let p = d
                .prediction
                .as_ref()
                .unwrap_or_else(|| panic!("`{}` {} has no prediction", f.name, d.code.as_str()));
            assert!(p.value > 0.0, "`{}` {}: {:?}", f.name, d.code.as_str(), p);
        }
    }
}

#[test]
fn deny_gates_exactly_the_buggy_fixtures() {
    for f in kernels::fixtures::all() {
        let gated = if f.perf {
            nymble_lint::enforce_perf(&f.kernel, LintLevel::Deny)
        } else {
            nymble_lint::enforce(&f.kernel, LintLevel::Deny)
        };
        if f.expect.is_empty() {
            assert!(gated.is_ok(), "near-miss `{}` passed deny", f.name);
        } else {
            let err = gated.expect_err(f.name);
            for code in f.expect {
                assert!(err.contains(code), "`{}` names {code}:\n{err}", f.name);
            }
        }
        // Warn reports but never fails; Off never even analyzes.
        if f.perf {
            assert!(nymble_lint::enforce_perf(&f.kernel, LintLevel::Warn).is_ok());
            assert!(nymble_lint::enforce_perf(&f.kernel, LintLevel::Off)
                .unwrap()
                .is_clean());
        } else {
            assert!(nymble_lint::enforce(&f.kernel, LintLevel::Warn).is_ok());
            assert!(nymble_lint::enforce(&f.kernel, LintLevel::Off)
                .unwrap()
                .is_clean());
        }
    }
}

#[test]
fn diagnostics_carry_spans_into_the_listing() {
    // Spans must point at real lines of the pretty-printed kernel so the
    // human rendering can quote them.
    for f in kernels::fixtures::buggy() {
        let report = if f.perf {
            perf_lint_kernel(&f.kernel)
        } else {
            lint_kernel(&f.kernel)
        };
        for d in &report.diagnostics {
            assert!(
                !d.spans.is_empty(),
                "`{}` {} has no spans",
                f.name,
                d.code.as_str()
            );
            assert!(
                d.spans[0].line.is_some(),
                "`{}` {} span points nowhere",
                f.name,
                d.code.as_str()
            );
        }
    }
}
