//! Acceptance bar from the lint feature spec: every shipped case-study
//! kernel (GEMM v1–v5 and π) must pass the analyzer at `deny`, at both the
//! default repro scale and the paper's scale. A lint that cries wolf on the
//! kernels the paper itself profiles would be worse than no lint.

use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_lint::{enforce, LintLevel};

fn assert_clean(k: &nymble_ir::Kernel) {
    let report = enforce(k, LintLevel::Deny)
        .unwrap_or_else(|r| panic!("kernel `{}` failed deny:\n{r}", k.name));
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn gemm_versions_are_clean_at_repro_scale() {
    let p = GemmParams {
        dim: 64,
        threads: 4,
        vec: 4,
        block: 16,
    };
    for v in GemmVersion::ALL {
        assert_clean(&gemm::build(v, &p));
    }
}

#[test]
fn gemm_versions_are_clean_at_paper_scale() {
    let p = GemmParams::paper_scale();
    for v in GemmVersion::ALL {
        assert_clean(&gemm::build(v, &p));
    }
}

#[test]
fn pi_is_clean() {
    for threads in [1, 2, 8] {
        assert_clean(&pi::build(&PiParams {
            steps: 1 << 14,
            threads,
            bs: 8,
        }));
    }
}

#[test]
fn odd_thread_counts_stay_clean() {
    // Disjointness must not rely on power-of-two thread counts: the
    // congruence criterion has to handle stride 3 and 7 decompositions.
    for threads in [3, 7] {
        let p = GemmParams {
            dim: 42,
            threads,
            vec: 1,
            block: 6,
        };
        assert_clean(&gemm::build(GemmVersion::Naive, &p));
    }
}
