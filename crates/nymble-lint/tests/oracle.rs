//! Dynamic oracle: the untimed IR interpreter replays each fixture and the
//! trace (`DynTrace`) must agree with the static verdict.
//!
//! - lint-clean kernels show no observed cross-thread conflict and uniform
//!   barrier-arrival counts;
//! - the NL001 and NL003 fixtures exhibit a real conflicting access pair;
//! - the NL002 fixture arrives at the barrier a different number of times
//!   per thread (the interpreter releases barriers on the live-thread
//!   count, so divergence shows as non-uniform arrivals, not deadlock);
//! - the NL004 fixture faults at runtime.
//!
//! NL005/NL006 have no dynamic signature — a dead `map` clause wastes a
//! transfer but executes cleanly — which is exactly why they need a static
//! analyzer; the oracle confirms those fixtures run without incident.

use nymble_ir::interp::{DynTrace, Interpreter, LaunchArg};
use nymble_ir::{ArgKind, Kernel, ScalarType, Type, Value};

/// Build a generic launch for any fixture kernel: scalars get 1 (so uniform
/// flags take the branch) and buffers get 64 zeroed elements — comfortably
/// past every fixture's largest index.
fn generic_launch(k: &Kernel) -> Vec<LaunchArg> {
    k.args
        .iter()
        .map(|a| match a.kind {
            ArgKind::Scalar(st) => LaunchArg::Scalar(match st {
                ScalarType::I32 => Value::I32(1),
                ScalarType::I64 => Value::I64(1),
                ScalarType::F32 => Value::F32(1.0),
                ScalarType::F64 => Value::F64(1.0),
            }),
            ArgKind::Buffer { elem, .. } => {
                LaunchArg::Buffer(vec![Value::zero(Type::scalar(elem)); 64])
            }
        })
        .collect()
}

fn trace_of(k: &Kernel) -> DynTrace {
    Interpreter::run_traced(k, &generic_launch(k)).1
}

fn fixture(name: &str) -> Kernel {
    kernels::fixtures::all()
        .into_iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("no fixture `{name}`"))
        .kernel
}

#[test]
fn lint_clean_fixtures_run_clean() {
    for f in kernels::fixtures::near_misses() {
        let report = nymble_lint::lint_kernel(&f.kernel);
        assert!(report.is_clean(), "{}", report.render_human());
        if f.perf {
            let perf = nymble_lint::perf_lint_kernel(&f.kernel);
            assert!(perf.is_clean(), "{}", perf.render_human());
        }
        let trace = trace_of(&f.kernel);
        assert!(
            trace.find_conflict().is_none(),
            "`{}`: statically clean but dynamically conflicting: {:?}",
            f.name,
            trace.find_conflict()
        );
        assert!(
            trace.barriers_uniform(),
            "`{}`: non-uniform barrier arrivals {:?}",
            f.name,
            trace.barrier_arrivals
        );
    }
}

#[test]
fn nl001_race_is_observed_dynamically() {
    let trace = trace_of(&fixture("nl001_race"));
    let (a, b) = trace.find_conflict().expect("the flagged race is real");
    assert_ne!(a.thread, b.thread);
    assert!(a.is_write || b.is_write);
    assert!(!(a.in_critical && b.in_critical));
}

#[test]
fn nl003_lost_update_is_observed_dynamically() {
    let trace = trace_of(&fixture("nl003_lost_update"));
    assert!(trace.find_conflict().is_some(), "unguarded RMW conflicts");
    // The guarded twin is quiet: every access pair meets inside `critical`.
    let guarded = trace_of(&fixture("nl003_critical"));
    assert!(guarded.find_conflict().is_none());
}

#[test]
fn nl002_divergence_shows_as_unequal_barrier_arrivals() {
    let trace = trace_of(&fixture("nl002_divergent"));
    assert!(
        !trace.barriers_uniform(),
        "only thread 0 reaches the barrier: {:?}",
        trace.barrier_arrivals
    );
    let uniform = trace_of(&fixture("nl002_uniform"));
    assert!(uniform.barriers_uniform(), "{:?}", uniform.barrier_arrivals);
}

#[test]
fn nl004_oob_faults_at_runtime() {
    let k = fixture("nl004_oob");
    let launch = generic_launch(&k);
    let fault = std::panic::catch_unwind(|| Interpreter::run_traced(&k, &launch));
    assert!(fault.is_err(), "the proven out-of-bounds store must fault");
}

#[test]
fn dead_map_clauses_have_no_dynamic_signature() {
    for name in ["nl005_dead_to", "nl006_dead_from"] {
        let trace = trace_of(&fixture(name));
        assert!(trace.find_conflict().is_none(), "{name}");
        assert!(trace.barriers_uniform(), "{name}");
    }
}

#[test]
fn shipped_gemm_oracle_agrees_with_the_lint() {
    // An 8×8 GEMM fits the generic 64-element buffers exactly. The naive
    // version's reduction is critical-guarded; the no-critical version owns
    // disjoint rows — both must replay without an observable conflict.
    use kernels::gemm::{self, GemmParams, GemmVersion};
    let p = GemmParams {
        dim: 8,
        threads: 2,
        vec: 4,
        block: 8,
    };
    for v in [GemmVersion::Naive, GemmVersion::NoCritical] {
        let k = gemm::build(v, &p);
        let report = nymble_lint::lint_kernel(&k);
        assert!(report.is_clean(), "{}", report.render_human());
        let trace = trace_of(&k);
        assert!(trace.find_conflict().is_none(), "{v:?}");
        assert!(trace.barriers_uniform(), "{v:?}");
    }
}
