//! The paper's §V-C workflow in miniature: profile a GEMM, read the trace,
//! apply the next optimization, repeat — showing how each Paraver view
//! motivates the next code change.
//!
//! ```sh
//! cargo run --release --example gemm_tuning -- [dim]
//! ```

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::ir::Value;
use hls_paraver::kernels::gemm::{build, GemmParams, GemmVersion};
use hls_paraver::kernels::reference;
use hls_paraver::paraver::analysis::StateProfile;
use hls_paraver::paraver::states;
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, SimConfig};

fn main() {
    let dim: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let p = GemmParams {
        dim,
        threads: 8,
        vec: 4,
        block: 8,
    };
    let sim = SimConfig::default().with_fast_launch();
    let d = dim as usize;
    let a = reference::gen_matrix(d, 1);
    let b = reference::gen_matrix(d, 2);
    let gold = reference::gemm(&a, &b, d);
    let to_vals = |m: &[f32]| m.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();

    let diagnosis = [
        "critical sections serialize the reduction → distribute rows instead",
        "memory-bound with narrow accesses → vectorize the A loads",
        "bandwidth is spent re-reading B → block into local memories",
        "distinct load/compute phases → double-buffer the prefetch",
        "memory reads now overlap compute — done",
    ];

    let mut prev = 0u64;
    for (v, note) in GemmVersion::ALL.iter().zip(diagnosis) {
        let kernel = build(*v, &p);
        let acc = compile(&kernel, &HlsConfig::default());
        let mut unit =
            ProfilingUnit::new(&kernel.name, kernel.num_threads, ProfilingConfig::default());
        let launch = vec![
            LaunchArg::Buffer(to_vals(&a)),
            LaunchArg::Buffer(to_vals(&b)),
            LaunchArg::Buffer(vec![Value::F32(0.0); d * d]),
        ];
        let r = Executor::run(&kernel, &acc, &sim, &launch, &mut unit).expect("simulation failed");
        let trace = unit.finish();

        // Verify against the CPU reference before trusting any numbers.
        let got: Vec<f32> = r.buffers[2]
            .iter()
            .map(|v| match v {
                Value::F32(x) => *x,
                other => other.as_f64() as f32,
            })
            .collect();
        let max_err = got
            .iter()
            .zip(&gold)
            .map(|(g, e)| (g - e).abs() / e.abs().max(1.0))
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "{v:?} wrong result (err {max_err})");

        let prof = StateProfile::compute(&trace.records, p.threads);
        let speedup = if prev == 0 {
            1.0
        } else {
            prev as f64 / r.total_cycles as f64
        };
        println!("{:=<74}", "");
        println!(
            "{:<24} {:>12} cycles  {:>5.2}x vs previous  (max rel err {:.1e})",
            v.name(),
            r.total_cycles,
            speedup,
            max_err
        );
        println!(
            "  GB/s {:.3}  stalls {:.1}%  spinning {:.1}%  critical {:.1}%  line-hit {:.0}%",
            r.throughput_gbps(&sim),
            r.stats.total_stalls() as f64 / (r.total_cycles * p.threads as u64) as f64 * 100.0,
            prof.fraction(states::SPINNING) * 100.0,
            prof.fraction(states::CRITICAL) * 100.0,
            r.stats.read_hit_rate() * 100.0
        );
        println!("  trace says: {note}");
        prev = r.total_cycles;
    }
}
