//! Post-mortem trace analysis: read a `.prv` bundle back from disk (as an
//! HPC analyst would, without the simulator in the loop) and compute the
//! paper's derived metrics — time-in-state, load balance, bandwidth series,
//! and the critical-section mutual-exclusion check behind Fig. 6's zoom.
//!
//! ```sh
//! cargo run --release --example trace_analysis -- [path/to/trace.prv]
//! ```
//!
//! With no argument it first generates a trace by running the naive GEMM
//! through the *streaming* trace pipeline: the simulator's buffer flushes
//! feed a background decode → sort → [`TraceSink`] thread which writes the
//! bundle straight to disk, so the full record set is never materialized.
//!
//! [`TraceSink`]: hls_paraver::paraver::TraceSink

use hls_paraver::paraver::analysis::{event_series, find_critical_overlap, StateProfile};
use hls_paraver::paraver::histogram;
use hls_paraver::paraver::parse::parse_prv;
use hls_paraver::paraver::{events, states, timeline};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        // Generate a fresh trace with the profiled naive GEMM, streamed
        // through a TraceSink instead of materialized in memory.
        use hls_paraver::hls::accel::{compile, HlsConfig};
        use hls_paraver::ir::Value;
        use hls_paraver::kernels::gemm::{build, GemmParams, GemmVersion};
        use hls_paraver::kernels::reference;
        use hls_paraver::paraver::{BundleWriter, TraceSink};
        use hls_paraver::profiling::{PipelineConfig, ProfilingConfig, ProfilingUnit};
        use hls_paraver::sim::memimg::LaunchArg;
        use hls_paraver::sim::{Executor, SimConfig};
        let p = GemmParams {
            dim: 64,
            ..Default::default()
        };
        let kernel = build(GemmVersion::Naive, &p);
        let acc = compile(&kernel, &HlsConfig::default());
        std::fs::create_dir_all("target/traces").unwrap();
        let stem = std::path::PathBuf::from("target/traces/analysis_demo");
        let sink_stem = stem.clone();
        // The sink factory runs on the pipeline thread once the run's final
        // metadata (duration) is known; any TraceSink works here.
        let mut unit = ProfilingUnit::new_streaming(
            &kernel.name,
            p.threads,
            ProfilingConfig::default(),
            PipelineConfig::default(),
            Box::new(move |meta| {
                let w = BundleWriter::create(
                    &sink_stem,
                    meta,
                    &hls_paraver::paraver::states::defs(),
                    &hls_paraver::paraver::events::defs(),
                )?;
                Ok(Box::new(w) as Box<dyn TraceSink + Send>)
            }),
        );
        let d = p.dim as usize;
        let vals = |m: &[f32]| m.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
        let a = reference::gen_matrix(d, 1);
        let _ = Executor::run(
            &kernel,
            &acc,
            &SimConfig::default().with_fast_launch(),
            &[
                LaunchArg::Buffer(vals(&a)),
                LaunchArg::Buffer(vals(&a)),
                LaunchArg::Buffer(vec![Value::F32(0.0); d * d]),
            ],
            &mut unit,
        )
        .expect("simulation failed");
        let report = unit.finish_streaming().expect("streaming pipeline");
        println!(
            "streamed {} records in {} flushes ({} B) without materializing\n",
            report.records, report.flush_count, report.flushed_bytes
        );
        format!("{}.prv", stem.display())
    });

    println!("analyzing {path}\n");
    let text = std::fs::read_to_string(&path).expect("read .prv");
    let (meta, records) = parse_prv(&text).expect("parse .prv");
    println!(
        "{} records over {} cycles, {} threads",
        records.len(),
        meta.duration,
        meta.num_threads
    );

    let prof = StateProfile::compute(&records, meta.num_threads);
    println!("\ntime in state (all threads):");
    for (id, name) in [
        (states::IDLE, "Idle"),
        (states::RUNNING, "Running"),
        (states::CRITICAL, "Critical"),
        (states::SPINNING, "Spinning"),
    ] {
        println!("  {:<9} {:>6.2}%", name, prof.fraction(id) * 100.0);
    }
    if let Some(imb) = prof.imbalance(states::RUNNING) {
        println!("running-time imbalance (max/min across threads): {imb:.3}");
    }

    match find_critical_overlap(&records, states::CRITICAL) {
        None => println!("mutual exclusion holds: no two threads ever overlap in Critical"),
        Some(t) => println!("VIOLATION: overlapping critical sections at cycle {t}"),
    }

    let dur = meta.duration.max(1);
    let bw = event_series(&records, events::BYTES_READ, dur.div_ceil(80), dur);
    println!(
        "\nread-bandwidth timeline (peak bin {} B):\n{}",
        bw.peak(),
        timeline::render_series(
            &bw.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
            "bytes read"
        )
    );
    // Paraver-style 2D histograms.
    println!(
        "\n{}",
        histogram::state_duration_histogram(&records, meta.num_threads, states::CRITICAL).render()
    );
    println!(
        "{}",
        histogram::event_value_histogram(&records, meta.num_threads, events::BYTES_READ).render()
    );

    println!(
        "\nstate view:\n{}",
        timeline::render_states(
            &records,
            meta.num_threads,
            meta.duration,
            &timeline::TimelineOptions {
                width: 80,
                ..Default::default()
            }
        )
    );
}
