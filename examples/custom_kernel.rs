//! Bring-your-own-kernel walkthrough: a Jacobi stencil written against the
//! builder API, statically checked with `nymble-lint`, functionally
//! verified with the untimed gold interpreter, then profiled on the timed
//! simulator — the recommended workflow for any new workload.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::hls::report;
use hls_paraver::ir::interp::{buffer_as_f32, Interpreter, LaunchArg as GoldArg};
use hls_paraver::ir::{KernelBuilder, MapDir, ScalarType, Value};
use hls_paraver::kernels::{extra, reference};
use hls_paraver::lint::{strict_check, LintLevel};
use hls_paraver::paraver::{analysis, events};
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, SimConfig};

fn main() {
    let n = 96usize;
    let threads = 6;

    // Step 0: static analysis. The builder's opt-in strict mode runs the
    // analyzer as part of `finish()` — a kernel where every thread writes
    // the same elements never gets out of the front door.
    let mut kb = KernelBuilder::new("racy_demo", 2);
    kb.set_strict_check(strict_check(LintLevel::Deny));
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let end = kb.c_i64(4);
    kb.for_range("i", end, |kb, i| {
        let v = kb.c_f32(1.0);
        kb.store(out, i, v); // both threads write OUT[0..4): NL001
    });
    let refused = kb.try_finish().expect_err("strict mode rejects the race");
    println!("strict mode refused the racy demo kernel:\n{refused}\n");

    let kernel = extra::jacobi(n as i64, threads);
    let grid = reference::gen_matrix(n, 11);
    let vals = |m: &[f32]| m.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();

    // Step 1: functional verification against the gold interpreter.
    let gold = Interpreter::run(
        &kernel,
        &[
            GoldArg::Buffer(vals(&grid)),
            GoldArg::Buffer(vec![Value::F32(0.0); n * n]),
        ],
    );
    let expect = reference::jacobi_sweep(&grid, n);
    let got = buffer_as_f32(&gold.buffers[1]);
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            assert!((got[i * n + j] - expect[i * n + j]).abs() < 1e-5);
        }
    }
    println!(
        "gold model matches CPU reference ({} flops)",
        gold.ops.flops
    );

    // Step 2: compile and inspect the schedule. The same analyzer gates
    // the compile pipeline via `HlsConfig::lint` — the stencil is clean,
    // so `deny` costs nothing and would catch regressions.
    let acc = compile(
        &kernel,
        &HlsConfig {
            lint: LintLevel::Deny,
            ..HlsConfig::default()
        },
    );
    println!("\n{}", report::schedule_report(&kernel, &acc));

    // Step 3: timed, profiled run.
    let sim = SimConfig::default().with_fast_launch();
    let mut unit = ProfilingUnit::new(&kernel.name, threads, ProfilingConfig::default());
    let r = Executor::run(
        &kernel,
        &acc,
        &sim,
        &[
            LaunchArg::Buffer(vals(&grid)),
            LaunchArg::Buffer(vec![Value::F32(0.0); n * n]),
        ],
        &mut unit,
    )
    .expect("simulation failed");
    let trace = unit.finish();
    println!(
        "{} cycles, {:.3} GB/s, line-buffer hit rate {:.0}% (the four stencil taps share one port buffer)",
        r.total_cycles,
        r.throughput_gbps(&sim),
        r.stats.read_hit_rate() * 100.0
    );

    // Step 4: what would the trace tell us? Stall intensity over time.
    let dur = trace.meta.duration.max(1);
    let stalls = analysis::event_series(&trace.records, events::STALLS, dur.div_ceil(60), dur);
    println!(
        "\n{}",
        hls_paraver::paraver::timeline::render_series(
            &stalls.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
            "stall cycles"
        )
    );
    println!(
        "total stall fraction {:.1}% — the stencil is memory-latency-bound",
        r.stats.total_stalls() as f64 / (r.total_cycles as f64 * threads as f64) * 100.0
    );
}
