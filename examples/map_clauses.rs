//! The §III-A data-transfer story: Nymble's old frontend "pessimistically
//! assum[ed] that all data had to be transferred to the FPGA and back";
//! OpenMP `map` clauses let the user say exactly what moves. This example
//! prices both strategies for the GEMM launch and shows the end-to-end
//! difference.
//!
//! ```sh
//! cargo run --release --example map_clauses
//! ```

use hls_paraver::ir::{KernelBuilder, MapDir, ScalarType};
use hls_paraver::sim::host::{end_to_end_cycles, transfer_cost, HostConfig};
use hls_paraver::sim::SimConfig;

fn main() {
    let dim = 512usize;
    let n = dim * dim;
    let host = HostConfig::default();
    let sim = SimConfig::default();

    // Precise mapping, as in the paper's Fig. 3 listing:
    //   map(to: A, B) map(from: C)
    let precise = {
        let mut kb = KernelBuilder::new("gemm_precise_maps", 8);
        let _a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let _b = kb.buffer("B", ScalarType::F32, MapDir::To);
        let _c = kb.buffer("C", ScalarType::F32, MapDir::From);
        kb.finish()
    };
    // The legacy pessimistic assumption: everything tofrom.
    let pessimistic = {
        let mut kb = KernelBuilder::new("gemm_pessimistic", 8);
        let _a = kb.buffer("A", ScalarType::F32, MapDir::ToFrom);
        let _b = kb.buffer("B", ScalarType::F32, MapDir::ToFrom);
        let _c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
        kb.finish()
    };

    let lens = [n, n, n];
    let p = transfer_cost(&precise, &lens, &host);
    let q = transfer_cost(&pessimistic, &lens, &host);
    // Kernel cycles from the paper-scale measurement (EXPERIMENTS.md).
    let kernel_cycles = 69_898_123u64; // double-buffered GEMM @512

    println!(
        "GEMM {dim}x{dim} launch, f32 ({} MB per matrix)\n",
        n * 4 / 1_000_000
    );
    for (name, c) in [
        ("map(to:A,B) map(from:C)", &p),
        ("pessimistic tofrom all", &q),
    ] {
        println!(
            "{name:<26} H2D {:>9} cy ({:>8} B)   D2H {:>9} cy ({:>8} B)   end-to-end {:>10} cy",
            c.h2d_cycles,
            c.h2d_bytes,
            c.d2h_cycles,
            c.d2h_bytes,
            end_to_end_cycles(kernel_cycles, c, &sim)
        );
    }
    let saved = q.total_cycles() - p.total_cycles();
    println!(
        "\nprecise map clauses save {saved} cycles ({:.2} ms at {} MHz) per launch — {:.1}% of this kernel's runtime",
        sim.cycles_to_seconds(saved) * 1e3,
        sim.clock_mhz,
        saved as f64 / kernel_cycles as f64 * 100.0
    );
}
