//! The §V-D scaling study as an interactive example: sweep the π kernel's
//! iteration count and watch the thread-launch ramp dissolve into parallel
//! execution (Figs. 11–13), entirely from the Paraver state view.
//!
//! ```sh
//! cargo run --release --example pi_scaling
//! ```

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::ir::Value;
use hls_paraver::kernels::pi::{build, launch_scalars, PiParams};
use hls_paraver::paraver::timeline::{render_states, TimelineOptions};
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, SimConfig};

fn main() {
    let sim = SimConfig::default();
    println!(
        "host starts one thread every {} cycles — small workloads never reach full parallelism\n",
        sim.launch_interval
    );
    for steps in [1_000_000u64, 4_000_000, 10_000_000, 40_000_000] {
        let p = PiParams {
            steps,
            threads: 8,
            bs: 8,
        };
        let kernel = build(&p);
        let acc = compile(&kernel, &HlsConfig::default());
        let (step, spt) = launch_scalars(&p);
        let mut unit = ProfilingUnit::new(
            &kernel.name,
            kernel.num_threads,
            ProfilingConfig {
                sampling_period: 100_000,
                ..Default::default()
            },
        );
        let launch = vec![
            LaunchArg::Scalar(Value::F32(step)),
            LaunchArg::Scalar(Value::I64(spt)),
            LaunchArg::Buffer(vec![Value::F32(0.0)]),
        ];
        let r = Executor::run(&kernel, &acc, &sim, &launch, &mut unit).expect("simulation failed");
        let trace = unit.finish();
        let est = match &r.buffers[2][0] {
            Value::F32(x) => x * step,
            _ => unreachable!(),
        };
        println!(
            "-- {steps} iterations: {:.3} GFLOP/s, pi = {est:.6} --",
            r.gflops(&sim)
        );
        let opts = TimelineOptions {
            width: 90,
            axis: false,
            ..Default::default()
        };
        println!(
            "{}",
            render_states(&trace.records, p.threads, trace.meta.duration, &opts)
        );
    }
    println!("(R bars lengthen and overlap as iteration counts grow — Figs. 11 → 13)");
}
