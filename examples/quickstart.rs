//! Quickstart: compile a small kernel with the Nymble-style HLS flow, run it
//! on the cycle-level FPGA simulator with the profiling unit attached, and
//! write + inspect a Paraver trace.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::hls::report;
use hls_paraver::ir::{KernelBuilder, MapDir, ScalarType, Type, Value};
use hls_paraver::paraver::analysis::StateProfile;
use hls_paraver::paraver::timeline::{render_states, TimelineOptions};
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, SimConfig};

fn main() {
    // 1. Write a kernel with the OpenMP-flavoured builder: a dot product
    //    over 4 hardware threads with a critical-section reduction.
    let n = 4096i64;
    let mut kb = KernelBuilder::new("quickstart_dot", 4);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let b = kb.buffer("B", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::ToFrom);
    let sum = kb.var("sum", Type::F32);
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let end = kb.c_i64(n);
    kb.for_each("i", my, end, nt64, |kb, i| {
        let av = kb.load(a, i, Type::F32);
        let bv = kb.load(b, i, Type::F32);
        let cur = kb.get(sum);
        let s = kb.mul_add(av, bv, cur);
        kb.set(sum, s);
    });
    kb.critical(|kb| {
        let z = kb.c_i64(0);
        let cur = kb.load(out, z, Type::F32);
        let sv = kb.get(sum);
        let upd = kb.add(cur, sv);
        let z2 = kb.c_i64(0);
        kb.store(out, z2, upd);
    });
    let kernel = kb.finish();

    // 2. Compile: scheduling, stage formation, fit estimation.
    let acc = compile(&kernel, &HlsConfig::default());
    println!("{}", report::schedule_report(&kernel, &acc));
    println!("{}", report::fit_summary(&kernel.name, &acc.fit));

    // 3. Run on the simulator with the profiling unit snooping the pipeline.
    let sim = SimConfig::default().with_fast_launch();
    let mut unit = ProfilingUnit::new(&kernel.name, kernel.num_threads, ProfilingConfig::default());
    let launch = vec![
        LaunchArg::Buffer((0..n).map(|i| Value::F32(i as f32 * 1e-3)).collect()),
        LaunchArg::Buffer(
            (0..n)
                .map(|i| Value::F32(((i % 7) as f32) * 0.25))
                .collect(),
        ),
        LaunchArg::Buffer(vec![Value::F32(0.0)]),
    ];
    let result = Executor::run(&kernel, &acc, &sim, &launch, &mut unit).expect("simulation failed");
    println!(
        "result = {:?} after {} cycles ({} stall cycles, {} B read)",
        result.buffers[2][0],
        result.total_cycles,
        result.stats.total_stalls(),
        result.stats.total(|t| t.bytes_read),
    );

    // 4. Decode the trace buffer into Paraver records and look at it.
    let trace = unit.finish();
    let stem = std::path::Path::new("target/traces/quickstart");
    std::fs::create_dir_all(stem.parent().unwrap()).unwrap();
    trace.write_bundle(stem).unwrap();
    println!(
        "\nwrote {}.prv/.pcf/.row ({} records, {} trace bytes flushed)\n",
        stem.display(),
        trace.records.len(),
        trace.flushed_bytes
    );
    let opts = TimelineOptions {
        width: 80,
        ..Default::default()
    };
    println!(
        "{}",
        render_states(
            &trace.records,
            kernel.num_threads,
            trace.meta.duration,
            &opts
        )
    );
    let prof = StateProfile::compute(&trace.records, kernel.num_threads);
    println!(
        "running {:.1}%  spinning {:.1}%  critical {:.1}%",
        prof.fraction(hls_paraver::paraver::states::RUNNING) * 100.0,
        prof.fraction(hls_paraver::paraver::states::SPINNING) * 100.0,
        prof.fraction(hls_paraver::paraver::states::CRITICAL) * 100.0,
    );
}
