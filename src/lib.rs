//! # hls-paraver — façade crate
//!
//! One-stop re-export of the whole HLS-to-Paraver performance-visualization
//! stack reproducing the CLUSTER 2020 paper *"Extending High-Level Synthesis
//! with High-Performance Computing Performance Visualization"*:
//!
//! * [`ir`] — kernel IR with an OpenMP-style builder ([`ir::KernelBuilder`]),
//! * [`lint`] — the static analyzer for kernel IR (data races, barrier
//!   divergence, lost updates, bounds, dead `map` clauses),
//! * [`hls`] — the Nymble-style HLS compiler (scheduling, stages, cost model),
//! * [`sim`] — the cycle-level FPGA simulator (Avalon bus, DRAM, semaphore…),
//! * [`profiling`] — the in-fabric profiling unit (states, events, buffer),
//! * [`paraver`] — Paraver `.prv`/`.pcf`/`.row` writers, parser and analysis,
//! * [`kernels`] — the paper's case-study kernels (GEMM ×5, π).
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table/figure.

pub use fpga_sim as sim;
pub use hls_profiling as profiling;
pub use kernels;
pub use nymble_hls as hls;
pub use nymble_ir as ir;
pub use nymble_lint as lint;
pub use paraver;
